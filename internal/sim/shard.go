package sim

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the sharded parallel engine: per-node event
// kernels advanced in bounded windows by a coordinator, with
// conservative Chandy–Misra-style synchronisation and no null
// messages.
//
// Every cross-node interaction has a minimum latency (for transputer
// links, the shortest packet's wire time), so an event posted by a
// node while executing at time T cannot be due at another node before
// T + lookahead.  The coordinator therefore lets each shard run
// independently up to a per-shard horizon
//
//	horizon(s) = lookahead + min over r != s of nextEvent(r)
//
// (no other shard can cause anything in s before that), then meets all
// shards at a barrier, releases the cross-shard mailbox in a canonical
// order, and opens the next window.  Shard execution inside a window
// is pure single-threaded event processing, so results are bit-for-bit
// identical whether windows run on one worker or many.
//
// A shard hosts one or more Ports — the per-participant handles the
// nodes of the simulated system schedule and post through.  Each port
// owns its own kernel; with one port per shard this is exactly the
// one-node-per-shard engine.  Fusing several ports onto one shard
// (see NewPort) keeps their mutual traffic inside the shard: a post
// between co-resident ports is scheduled straight into the destination
// port's kernel at its exact timestamp — no mailbox entry, no
// coordinator barrier — and the member kernels are interleaved by a
// barrier-free sequential loop (see Shard.runBefore) applying the same
// conservative rule locally.  Because both the mailbox path and the
// fused path deliver at the same instants with the same
// (origin port, per-port sequence) ordering keys, every port's kernel
// executes the identical event sequence at any partition, which is
// what makes observable results byte-identical however nodes are
// grouped onto shards.

// crossEvent is one mailbox entry: an event produced by port src
// while executing a window, due on port dst at time at.  Entries are
// released at the barrier sorted by (at, src, seq) — a total order
// that no amount of worker parallelism can perturb.
type crossEvent struct {
	at  Time
	src int // origin port rank
	seq uint64
	dst int // destination port rank
	fn  func()
}

// Coordinator advances a set of shards in conservative time windows.
type Coordinator struct {
	lookahead Time
	shards    []*Shard
	ports     []*Port
	workers   int

	mu sync.Mutex
	xq []crossEvent

	// now is the global low-water mark: the limit of the last bounded
	// run, so an empty system still reports time correctly.
	now Time

	// onFlush, when set, is called at every barrier with the time below
	// which no further events can occur; observers use it to merge and
	// release per-shard probe buffers in deterministic order.
	onFlush func(upTo Time, final bool)

	// Window dispatch state (see runWindow).  claim packs the current
	// window's epoch, shard count and next-unclaimed index into one
	// word, so helpers can take work with a single compare-and-swap
	// and a stale helper can never claim into the wrong window: the
	// epoch bits make every cross-window CAS fail.
	claim    atomic.Uint64
	active   []*Shard
	tokenCh  chan struct{}
	sleepers atomic.Int32
	helpers  int
	windowWg sync.WaitGroup

	// Per-pair wiring (see horizons).  With no Wire calls the
	// coordinator treats the shard graph as complete at the global
	// lookahead — the PR-3 rule.  Once wired, w[a][b] is the direct
	// lookahead from shard a to shard b (infTime when unwired),
	// wcount[a][b] counts parallel links so severing one of several
	// keeps the pair finite, and dist is the all-pairs shortest-path
	// closure rebuilt lazily after wiring changes.
	wired      bool
	w          [][]Time
	wcount     [][]int
	dist       [][]Time
	selfInf    []Time // shortest round trip leaving and re-entering a shard
	distDirty  bool
	sendBounds []Time // per-barrier scratch
	unwires    []unwire

	// byDist[s] holds the sources that can reach s sorted by influence
	// distance (nearest first), rebuilt with dist; minSendBound is the
	// per-barrier minimum of sendBounds.  Together they let horizonFor
	// cut its scan off early: once d + minSendBound cannot beat the
	// bound found so far, no farther source can either.
	byDist       [][]distEntry
	minSendBound Time

	// Per-barrier scratch, reused to keep the barrier loop
	// allocation-free: each shard's next event time (MaxTime when its
	// queues are empty) and the active-shard list for the window.
	nts       []Time
	activeBuf []*Shard

	// Engine diagnostics (see EngineStats).  All but fused are touched
	// only by the coordinator thread between windows; fused is bumped by
	// shard goroutines taking the intra-shard delivery fast path.
	stBarriers     uint64
	stWindows      uint64
	stShardWindows uint64
	stCross        uint64
	stSpanSum      Time
	stBarrierWait  int64
	lastMin1       Time
	lastMin1Set    bool
}

// distEntry is one source in a shard's nearest-first influence list.
type distEntry struct {
	d Time
	q int32
}

// unwire is a pending wiring removal: it takes effect only at a barrier
// where every event at or before cut has already executed, so in-flight
// traffic from before the sever is already in the destination kernels.
type unwire struct {
	a, b int
	cut  Time
}

// infTime marks an absent path; far enough from MaxTime that sums of
// two never overflow.
const infTime = MaxTime / 4

// claim-word layout: epoch(32) | len(16) | idx(16).
const (
	claimEpochShift = 32
	claimLenShift   = 16
	claimMask       = 0xffff
)

// NewCoordinator builds a coordinator whose conservative lookahead is
// the given minimum cross-node event latency.
func NewCoordinator(lookahead Time) *Coordinator {
	if lookahead <= 0 {
		panic("sim: coordinator lookahead must be positive")
	}
	return &Coordinator{lookahead: lookahead, workers: 1}
}

// Lookahead returns the coordinator's window lookahead.
func (c *Coordinator) Lookahead() Time { return c.lookahead }

// SetWorkers sets how many OS goroutines execute shards inside each
// window.  The result is identical for every value; only wall-clock
// time changes.  Values below 1 select 1.
func (c *Coordinator) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	c.workers = n
}

// Workers returns the configured worker count.
func (c *Coordinator) Workers() int { return c.workers }

// OnFlush registers the barrier callback (see Coordinator doc).  Only
// one callback is supported; registering replaces the previous one.
func (c *Coordinator) OnFlush(fn func(upTo Time, final bool)) { c.onFlush = fn }

// NewShard adds a shard and returns it.  The shard comes with a
// default port, so code written against the one-port-per-shard surface
// (Schedule, Cancel, Post on the Shard itself) keeps working.
func (c *Coordinator) NewShard() *Shard {
	s := &Shard{c: c, id: len(c.shards)}
	c.shards = append(c.shards, s)
	s.p0 = c.newPort(s)
	return s
}

// newPort registers a port on the shard.  Rank — the creation ordinal
// across the whole coordinator — is the port's identity in delivery
// keys and event IDs, so the canonical order of same-instant
// deliveries depends only on which ports exist, never on how they are
// partitioned onto shards.
func (c *Coordinator) newPort(s *Shard) *Port {
	if len(c.ports) >= claimMask-1 {
		panic("sim: too many ports")
	}
	p := &Port{s: s, rank: len(c.ports), k: NewKernel()}
	c.ports = append(c.ports, p)
	s.ports = append(s.ports, p)
	return p
}

// Wire records a direct link from shard a to shard b with the given
// minimum latency.  Calling Wire at least once switches the coordinator
// from the complete-graph default to horizons derived from actual
// wiring: pairs with no connecting path contribute no bound at all, so
// disjoint components (and fully severed nodes) synchronise only
// internally.  Parallel links stack; each is removed by one Unwire.
func (c *Coordinator) Wire(a, b int, latency Time) {
	if latency <= 0 {
		panic("sim: wire latency must be positive")
	}
	c.ensureMatrix()
	c.wcount[a][b]++
	if latency < c.w[a][b] {
		c.w[a][b] = latency
	}
	c.distDirty = true
}

// Unwire schedules the removal of one a→b link, effective once the
// whole system has executed past cut (the simulated instant the link
// stopped carrying traffic).  The deferral is what makes removal safe:
// by then every event that could have used the link has fired and its
// deliveries sit in the destination kernels, so widening the horizon
// afterwards cannot lose causality.
//
// Unwire may be called from shard goroutines mid-window (a fault
// schedule severing a link); the pending list is guarded by the
// coordinator mutex and drained at the next barrier.  An Unwire with
// no prior Wire (an unwired coordinator) is recorded but never
// applied.
func (c *Coordinator) Unwire(a, b int, cut Time) {
	c.mu.Lock()
	c.unwires = append(c.unwires, unwire{a: a, b: b, cut: cut})
	c.mu.Unlock()
}

func (c *Coordinator) ensureMatrix() {
	n := len(c.shards)
	if c.wired && len(c.w) == n {
		return
	}
	w := make([][]Time, n)
	wc := make([][]int, n)
	for i := range w {
		w[i] = make([]Time, n)
		wc[i] = make([]int, n)
		for j := range w[i] {
			w[i][j] = infTime
		}
		// Copy any earlier, smaller matrix (shards added after wiring
		// started).
		if i < len(c.w) {
			copy(w[i], c.w[i])
			copy(wc[i], c.wcount[i])
		}
	}
	c.w, c.wcount = w, wc
	c.wired = true
	c.distDirty = true
}

// applyUnwires retires pending link removals whose cut time the whole
// system has passed.  Called between windows, with min1 the earliest
// pending event anywhere.
func (c *Coordinator) applyUnwires(min1 Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	kept := c.unwires[:0]
	for _, u := range c.unwires {
		if min1 <= u.cut {
			kept = append(kept, u)
			continue
		}
		if c.wcount[u.a][u.b] > 0 {
			c.wcount[u.a][u.b]--
			if c.wcount[u.a][u.b] == 0 {
				c.w[u.a][u.b] = infTime
				c.distDirty = true
			}
		}
	}
	c.unwires = kept
}

// refreshDist rebuilds the all-pairs shortest-path closure and the
// per-shard minimum round trip.  Shard counts are small and wiring
// changes are rare (a sever), so Floyd–Warshall is plenty.
func (c *Coordinator) refreshDist() {
	if !c.distDirty {
		return
	}
	c.distDirty = false
	n := len(c.shards)
	if len(c.dist) != n {
		c.dist = make([][]Time, n)
		for i := range c.dist {
			c.dist[i] = make([]Time, n)
		}
		c.selfInf = make([]Time, n)
		c.sendBounds = make([]Time, n)
	}
	for i := 0; i < n; i++ {
		copy(c.dist[i], c.w[i])
		c.dist[i][i] = 0
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := c.dist[i][k]
			if dik >= infTime {
				continue
			}
			for j := 0; j < n; j++ {
				if d := dik + c.dist[k][j]; d < c.dist[i][j] {
					c.dist[i][j] = d
				}
			}
		}
	}
	for s := 0; s < n; s++ {
		rt := infTime
		for r := 0; r < n; r++ {
			if r == s {
				continue
			}
			if d := c.dist[s][r] + c.dist[r][s]; d < rt {
				rt = d
			}
		}
		c.selfInf[s] = rt
	}
	// byDist[s] lists every source that can influence s, nearest
	// first, so the per-barrier horizon scan can stop as soon as the
	// remaining distances cannot beat the minimum found.  Unreachable
	// sources are left out entirely: they never contribute a bound.
	if len(c.byDist) != n {
		c.byDist = make([][]distEntry, n)
	}
	for s := 0; s < n; s++ {
		list := c.byDist[s][:0]
		for q := 0; q < n; q++ {
			d := c.dist[q][s]
			if q == s {
				d = c.selfInf[s]
			}
			if d >= infTime {
				continue
			}
			list = append(list, distEntry{d: d, q: int32(q)})
		}
		sort.Slice(list, func(i, j int) bool { return list[i].d < list[j].d })
		c.byDist[s] = list
	}
}

// Dist reports the current influence distance from shard a to shard b
// (infinite when no path connects them), recomputing the closure if
// wiring changed.  For tests and diagnostics; the run loop uses the
// internal matrices directly.
func (c *Coordinator) Dist(a, b int) (d Time, connected bool) {
	if !c.wired {
		if a == b {
			return 0, true
		}
		return c.lookahead, true
	}
	c.applyUnwires(MaxTime)
	c.refreshDist()
	d = c.dist[a][b]
	return d, d < infTime
}

// Shards returns the shards in creation order.
func (c *Coordinator) Shards() []*Shard { return c.shards }

// Ports returns the ports in creation (rank) order.
func (c *Coordinator) Ports() []*Port { return c.ports }

// Now returns the global simulated time: the furthest any port has
// executed (or the limit of the last bounded run if later).
func (c *Coordinator) Now() Time {
	t := c.now
	for _, p := range c.ports {
		if n := p.k.Now(); n > t {
			t = n
		}
	}
	return t
}

// drain releases the cross-shard mailbox into the destination kernels
// in (at, src, seq) order.  Called between windows only.
func (c *Coordinator) drain() {
	c.mu.Lock()
	q := c.xq
	c.xq = nil
	c.mu.Unlock()
	if len(q) == 0 {
		return
	}
	c.stCross += uint64(len(q))
	// Insertion sort: the mailbox is tiny (a window's worth of link
	// packets) and often nearly ordered.
	for i := 1; i < len(q); i++ {
		for j := i; j > 0 && crossLess(q[j], q[j-1]); j-- {
			q[j], q[j-1] = q[j-1], q[j]
		}
	}
	for _, e := range q {
		// The key extends the (at, src, seq) order into the kernel heap
		// itself, so a delivery's place among same-instant events never
		// depends on which barrier injected it (see Kernel.less) — and,
		// because the fused fast path in Port.Post uses the same key, not
		// on whether the origin port shares the destination's shard.
		c.ports[e.dst].k.ScheduleDelivery(e.at, deliveryKey(e.src, e.seq), e.fn)
	}
}

// deliveryKey packs a delivery's canonical identity — origin port rank
// and per-port sequence — into the kernel ordering key.
func deliveryKey(rank int, seq uint64) uint64 {
	return uint64(rank+1)<<portRankShift | seq
}

func crossLess(a, b crossEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// flush invokes the barrier callback.
func (c *Coordinator) flush(upTo Time, final bool) {
	if c.onFlush != nil {
		c.onFlush(upTo, final)
	}
}

// Run fires events until every port's queue (and the mailbox) drains,
// and returns the final time.
func (c *Coordinator) Run() Time {
	c.run(MaxTime, false)
	return c.Now()
}

// RunUntil fires events with time <= limit.  It returns true if the
// system drained before the limit; otherwise every port's clock is
// advanced to the limit (matching Kernel.RunUntil on a lone kernel).
func (c *Coordinator) RunUntil(limit Time) bool {
	return c.run(limit, true)
}

func (c *Coordinator) run(limit Time, bounded bool) bool {
	stop := c.startPool()
	defer stop()
	if len(c.nts) != len(c.shards) {
		c.nts = make([]Time, len(c.shards))
	}
	for {
		c.drain()
		// min1/min2: the two earliest next-event times across shards,
		// for the per-shard horizon rule.  Each shard's next-event time
		// is cached for the rest of the barrier (send bounds, the
		// active-shard scan): peeking costs a cancellation check.
		min1, min2 := MaxTime, MaxTime
		owner := -1
		for _, s := range c.shards {
			t, ok := s.NextTime()
			if !ok {
				c.nts[s.id] = MaxTime
				continue
			}
			c.nts[s.id] = t
			if t < min1 {
				min1, min2 = t, min1
				owner = s.id
			} else if t < min2 {
				min2 = t
			}
		}
		if min1 == MaxTime {
			c.flush(MaxTime, true)
			return true
		}
		c.flush(min1, false)
		if bounded && min1 > limit {
			for _, s := range c.shards {
				s.advanceTo(limit)
			}
			if c.now < limit {
				c.now = limit
			}
			return false
		}
		c.stBarriers++
		if c.lastMin1Set && min1 > c.lastMin1 {
			c.stSpanSum += min1 - c.lastMin1
		}
		c.lastMin1, c.lastMin1Set = min1, true
		if c.wired {
			c.applyUnwires(min1)
			c.refreshDist()
			minSb := MaxTime
			for _, q := range c.shards {
				sb := q.sendBound()
				c.sendBounds[q.id] = sb
				if sb < minSb {
					minSb = sb
				}
			}
			c.minSendBound = minSb
		}
		active := c.activeBuf[:0]
		for _, s := range c.shards {
			// The sound window: a shard may run only to the earliest
			// instant any cross-shard event could reach it.  Posts made
			// this window are due no earlier than min1+lookahead (every
			// fired event is at >= min1), and a peer cannot react to a
			// post before the next barrier, so everyone may run to
			// min1+lookahead.  The min1 owner alone gets more: events
			// addressed to it come from shards whose own events are at
			// >= min2, so it may run to min(min2, min1+lookahead) +
			// lookahead.  A lone shard has no one to hear from at all.
			// (With wiring information the generalised rule in horizonFor
			// replaces this; on a complete graph with no send promises it
			// reduces to exactly this formula.)
			var hzn Time
			switch {
			case len(c.shards) == 1:
				hzn = MaxTime
			case c.wired:
				hzn = c.horizonFor(s)
			case s.id == owner:
				h2 := min2
				if h2 > min1+c.lookahead {
					h2 = min1 + c.lookahead
				}
				hzn = h2 + c.lookahead
			default:
				hzn = min1 + c.lookahead
			}
			if bounded && hzn > limit+1 {
				hzn = limit + 1
			}
			s.hzn = hzn
			if c.nts[s.id] < hzn {
				active = append(active, s)
			}
		}
		c.activeBuf = active
		if len(active) > 0 {
			c.stWindows++
			c.stShardWindows += uint64(len(active))
		}
		c.runWindow(active)
	}
}

// horizonFor computes a shard's window bound from actual wiring: the
// earliest instant externally-visible activity anywhere could reach s.
// Shard q's first possible external action is sendBound(q) — its next
// event, except that a runner's quiet promise discounts the promised
// continuation up to the promised time — and the fastest route from q
// to s adds dist[q][s] (for q = s, the shortest round trip out and
// back, since a shard's own event can bound it only via an echo).
// Pairs with no connecting path contribute nothing: a severed or
// unwired neighbourhood cannot affect s at all.  On a complete graph
// with no promises this reduces exactly to the min1/min2 rule.
//
// Fusion changes none of the arithmetic, only the graph it runs over:
// the partition's shards replace per-node shards, an inter-shard edge
// is the minimum latency over member wire pairs (Wire keeps the min),
// and intra-member traffic does not appear at all — which is the
// point, since it no longer bounds any window.
func (c *Coordinator) horizonFor(s *Shard) Time {
	hzn := MaxTime
	minSb := c.minSendBound
	for _, e := range c.byDist[s.id] {
		if hzn < MaxTime && e.d+minSb >= hzn {
			break
		}
		sb := c.sendBounds[e.q]
		if sb >= infTime {
			continue
		}
		if h := sb + e.d; h < hzn {
			hzn = h
		}
	}
	return hzn
}

// startPool launches the helper goroutines for a run.  With one worker
// (or one shard) no goroutines are started and windows run inline.
// The coordinator itself executes shards too, so a run uses workers-1
// helpers: on a machine with nothing to run them on, the coordinator
// simply claims every shard itself and a window costs a handful of
// atomic operations more than sequential execution.
func (c *Coordinator) startPool() (stop func()) {
	n := c.workers
	if n > len(c.shards) {
		n = len(c.shards)
	}
	if n <= 1 {
		return func() {}
	}
	c.helpers = n - 1
	c.tokenCh = make(chan struct{}, c.helpers)
	var alive sync.WaitGroup
	alive.Add(c.helpers)
	for i := 0; i < c.helpers; i++ {
		go func() {
			defer alive.Done()
			c.helperLoop()
		}()
	}
	ch := c.tokenCh
	return func() {
		close(ch)
		alive.Wait()
		c.tokenCh = nil
		c.helpers = 0
	}
}

// helperLoop claims shards whenever a window is open.  Between windows
// a helper spins briefly on the claim word (windows are short, often
// only a few hundred simulated nanoseconds apart), then parks on the
// token channel until the coordinator wakes it or the run ends.
func (c *Coordinator) helperLoop() {
	const spinBudget = 1 << 12
	spins := 0
	for {
		if c.tryClaim() {
			spins = 0
			continue
		}
		spins++
		if spins < spinBudget {
			if spins%64 == 0 {
				runtime.Gosched()
			}
			continue
		}
		// Park.  Re-check after registering as a sleeper so a window
		// opened concurrently cannot be missed: the coordinator reads
		// sleepers after publishing the claim word.
		c.sleepers.Add(1)
		if c.tryClaim() {
			c.sleepers.Add(-1)
			spins = 0
			continue
		}
		_, ok := <-c.tokenCh
		c.sleepers.Add(-1)
		if !ok {
			return
		}
		spins = 0
	}
}

// tryClaim takes one shard of the current window, if any remains, and
// runs it.  The epoch bits in the claim word pin the coordinator: a
// successful CAS means the window it belongs to is still open (the
// coordinator cannot pass the barrier until every claimed shard is
// done), so c.active is stable and safe to read.
func (c *Coordinator) tryClaim() bool {
	for {
		cur := c.claim.Load()
		idx := cur & claimMask
		if idx >= (cur>>claimLenShift)&claimMask {
			return false
		}
		if !c.claim.CompareAndSwap(cur, cur+1) {
			continue
		}
		s := c.active[idx]
		s.runBefore(s.hzn)
		c.windowWg.Done()
		return true
	}
}

// runWindow executes one window: every active shard runs its events
// strictly before its horizon.  The barrier (WaitGroup) makes all
// shard work of this window happen-before the coordinator resumes.
func (c *Coordinator) runWindow(active []*Shard) {
	if c.tokenCh == nil || len(active) == 1 {
		for _, s := range active {
			s.runBefore(s.hzn)
		}
		return
	}
	if len(active) > claimMask {
		panic("sim: too many shards in one window")
	}
	// Publish the window.  The WaitGroup is armed before the claim
	// word: a helper that claims the first shard instantly must find
	// the barrier already counting it.
	c.active = active
	c.windowWg.Add(len(active))
	epoch := (c.claim.Load() >> claimEpochShift) + 1
	c.claim.Store(epoch<<claimEpochShift | uint64(len(active))<<claimLenShift)
	if c.sleepers.Load() > 0 {
		// Wake parked helpers, at most one per remaining shard.
		for i := 0; i < c.helpers && i < len(active)-1; i++ {
			select {
			case c.tokenCh <- struct{}{}:
			default:
				i = c.helpers // buffer full: every helper already has a wakeup pending
			}
		}
	}
	// The coordinator works the window too, then waits out the stragglers.
	for c.tryClaim() {
	}
	//tvet:ignore nondetsource wall-clock here only feeds EngineStats barrier-wait diagnostics, never simulation state
	t0 := time.Now()
	c.windowWg.Wait()
	//tvet:ignore nondetsource wall-clock here only feeds EngineStats barrier-wait diagnostics, never simulation state
	c.stBarrierWait += time.Since(t0).Nanoseconds()
}

// post appends a cross-shard event to the mailbox.  Safe to call from
// any shard goroutine during a window.
func (c *Coordinator) post(src, dst *Port, at Time, fn func()) {
	seq := src.xseq
	src.xseq++
	c.mu.Lock()
	c.xq = append(c.xq, crossEvent{at: at, src: src.rank, seq: seq, dst: dst.rank, fn: fn})
	c.mu.Unlock()
}

// EngineStats is a snapshot of what the windowed engine actually did —
// partition- and worker-dependent diagnostics, deliberately kept out
// of the partition-invariant observable outputs (traces, stats, flow
// tables).  BarrierWaitNs is wall-clock and meaningful only with more
// than one worker; everything else is deterministic for a fixed
// partition and workload.
type EngineStats struct {
	// Shards and Ports describe the partition: Ports simulation
	// participants mapped onto Shards coordinator units.
	Shards int
	Ports  int
	// Barriers counts coordinator loop iterations; Windows those that
	// had at least one shard with work, and ShardWindows the total
	// shard-window executions (ShardWindows/Windows is the mean number
	// of shards active per window).
	Barriers     uint64
	Windows      uint64
	ShardWindows uint64
	// LocalWindows counts the barrier-free micro-windows fused shards
	// ran to interleave their member ports (zero with no fusion).
	LocalWindows uint64
	// Cross counts deliveries that crossed shards through the barrier
	// mailbox; Fused counts port-to-port deliveries that stayed inside
	// one shard (the fusion fast path).
	Cross uint64
	Fused uint64
	// SpanSum is the total simulated time the barrier low-water mark
	// advanced over the run; SpanSum/Windows is the mean window span.
	SpanSum Time
	// BarrierWaitNs is wall-clock time the coordinator spent waiting at
	// window barriers for helpers to finish.
	BarrierWaitNs int64
}

// EngineStats returns the engine diagnostics accumulated so far.  Call
// between runs, not from inside a window.
func (c *Coordinator) EngineStats() EngineStats {
	var local, fused uint64
	for _, s := range c.shards {
		local += s.stLocal
		fused += s.stFused
	}
	return EngineStats{
		Shards:        len(c.shards),
		Ports:         len(c.ports),
		Barriers:      c.stBarriers,
		Windows:       c.stWindows,
		ShardWindows:  c.stShardWindows,
		LocalWindows:  local,
		Cross:         c.stCross,
		Fused:         fused,
		SpanSum:       c.stSpanSum,
		BarrierWaitNs: c.stBarrierWait,
	}
}

// portRankShift places the owning port's rank (plus one) in the top
// bits of an EventID, so a handle can be routed back to the kernel
// that issued it even when it crosses shards — and in delivery keys,
// where it makes same-instant ordering partition-invariant.
const portRankShift = 48

// Shard is one unit of coordinator scheduling: a group of ports whose
// kernels are advanced together inside a window, by one goroutine at a
// time.  It implements the same Clock interface as a Kernel (through
// its default port), and additionally the batch-driver surface
// (NextTime, Horizon, SetOffset, Stamp) used by instruction runners.
type Shard struct {
	c     *Coordinator
	id    int
	hzn   Time
	p0    *Port
	ports []*Port

	// Scratch for the fused member loop (cached per-member next-event
	// times and send bounds with the kernel stamps that validate them),
	// and the shard's diagnostic counters — plain fields, since a
	// shard's work is single-threaded within a window.
	nts     []Time
	sbs     []Time
	stamps  []uint64
	stLocal uint64
	stFused uint64
}

// Port is one participant's handle on a shard: an event kernel of its
// own plus the identity cross-port deliveries are keyed by.  With
// shard fusion several ports share one shard, and their kernels are
// interleaved sequentially without coordinator barriers; a port's rank
// — its creation ordinal across the coordinator — is
// partition-invariant, which keeps event identities and same-instant
// delivery order identical however ports are grouped.  A Port
// implements the Clock interface and the batch-driver surface, so
// machines, engines and runners are written against it exactly as they
// were against a Shard.
type Port struct {
	s    *Shard
	rank int
	k    *Kernel
	hzn  Time
	xseq uint64

	// The current quiet promise (see PromiseQuiet): the pending event
	// promiseID will not act externally before promiseUntil.  Written
	// only by the port's own window execution, read only between
	// member turns and at barriers.
	promiseID    EventID
	promiseUntil Time
}

// NewPort adds a participant to the shard — the fusion primitive:
// ports of one shard interleave without coordinator barriers, and
// their mutual traffic needs no mailbox.
func (s *Shard) NewPort() *Port { return s.c.newPort(s) }

// Port returns the shard's default port (created with the shard).
func (s *Shard) Port() *Port { return s.p0 }

// ID returns the shard's index within its coordinator.
func (s *Shard) ID() int { return s.id }

// Coordinator returns the owning coordinator.
func (s *Shard) Coordinator() *Coordinator { return s.c }

// Shard returns the shard the port lives on.
func (p *Port) Shard() *Shard { return p.s }

// Rank returns the port's creation ordinal within its coordinator.
func (p *Port) Rank() int { return p.rank }

// Now returns the default port's current (virtual) time.
func (s *Shard) Now() Time { return s.p0.k.Now() }

// Now returns the port's current (virtual) time.
func (p *Port) Now() Time { return p.k.Now() }

// Pending reports the number of scheduled, uncancelled events across
// the shard's ports.  It deliberately ignores the coordinator mailbox:
// the answer must not depend on how far other shards have progressed
// inside the current window.
func (s *Shard) Pending() int {
	n := 0
	for _, p := range s.ports {
		n += p.k.Pending()
	}
	return n
}

// Pending reports the scheduled, uncancelled events on this port's own
// kernel (the mailbox is ignored, as in Shard.Pending).
func (p *Port) Pending() int { return p.k.Pending() }

// Schedule runs fn at the given time on the default port.
func (s *Shard) Schedule(at Time, fn func()) EventID { return s.p0.Schedule(at, fn) }

// Schedule runs fn at the given time on the port's kernel.  The
// returned ID carries the port's rank, so it can be cancelled from
// anywhere.
func (p *Port) Schedule(at Time, fn func()) EventID {
	return p.tag(p.k.Schedule(at, fn))
}

// After schedules fn after a delay from the shard's current time.
func (s *Shard) After(d Time, fn func()) EventID { return s.p0.After(d, fn) }

// After schedules fn after a delay from the port's current time.
func (p *Port) After(d Time, fn func()) EventID {
	return p.tag(p.k.After(d, fn))
}

// Cancel prevents a scheduled event from firing (see Port.Cancel).
func (s *Shard) Cancel(id EventID) { s.p0.Cancel(id) }

// Cancel prevents a scheduled event from firing.  An event owned by
// another port cannot be revoked retroactively: the cancellation takes
// effect one lookahead ahead — through the mailbox when the owner is
// on another shard, as a keyed delivery into the owner's kernel when
// fused onto this one — so the race between a cancel and the event
// firing resolves identically at every partition.  If the event fires
// first, the cancel is a no-op, exactly like any cross-node signal.
func (p *Port) Cancel(id EventID) {
	owner := int(id>>portRankShift) - 1
	raw := id & (1<<portRankShift - 1)
	c := p.s.c
	if owner < 0 || owner >= len(c.ports) {
		panic(fmt.Sprintf("sim: cancel of foreign event id %#x", uint64(id)))
	}
	op := c.ports[owner]
	switch {
	case op == p:
		p.k.Cancel(raw)
	case op.s == p.s:
		p.deliverLocal(op, p.Now()+c.lookahead, func() { op.k.Cancel(raw) })
	default:
		c.post(p, op, p.Now()+c.lookahead, func() { op.k.Cancel(raw) })
	}
}

func (p *Port) tag(id EventID) EventID {
	return id | EventID(p.rank+1)<<portRankShift
}

// NextTime reports the earliest pending event across the shard's
// ports.
func (s *Shard) NextTime() (Time, bool) {
	if len(s.ports) == 1 {
		return s.p0.k.NextTime()
	}
	best, found := MaxTime, false
	for _, p := range s.ports {
		if t, ok := p.k.NextTime(); ok && t < best {
			best, found = t, true
		}
	}
	return best, found
}

// NextTime reports the earliest pending event on the port's own
// kernel — the batch runner's execution bound, which fusion leaves
// per-node so batches stay long.
func (p *Port) NextTime() (Time, bool) { return p.k.NextTime() }

// PromiseQuiet records a batch runner's send promise: the pending
// event id (the runner's continuation) will not start or acknowledge
// any link transfer before the given time, because the predecoded
// instructions ahead of it are pure compute with a known minimum cycle
// cost.  The promise dies with the event: once id fires it is ignored,
// and the runner issues a fresh one (or none) at its next batch end.
func (s *Shard) PromiseQuiet(id EventID, until Time) { s.p0.PromiseQuiet(id, until) }

// PromiseQuiet records the port's quiet promise (see
// Shard.PromiseQuiet).  Each port carries its own: fused runners
// promise independently, and both the coordinator's shard send bound
// and the fused member loop discount each promised continuation
// individually.
func (p *Port) PromiseQuiet(id EventID, until Time) {
	p.promiseID = id & (1<<portRankShift - 1)
	p.promiseUntil = until
}

// sendBound is the earliest instant the shard could act in a way
// visible outside it: the minimum of its ports' send bounds.
func (s *Shard) sendBound() Time {
	if len(s.ports) == 1 {
		p := s.p0
		nt, ok := p.k.NextTime()
		if !ok {
			return MaxTime
		}
		return p.sendBoundAt(nt)
	}
	b := MaxTime
	for _, p := range s.ports {
		nt, ok := p.k.NextTime()
		if !ok {
			continue
		}
		if sb := p.sendBoundAt(nt); sb < b {
			b = sb
		}
	}
	return b
}

// sendBoundAt is the earliest instant this port could act in a way
// visible outside its kernel, given nt, its already-peeked next event
// time.  Without a live promise that is simply nt; with one, the
// promised continuation is discounted up to the promised time — the
// other pending events still bound the answer, because any of them
// could cascade into a send at its own instant.  The promise can only
// matter when the promised event is the head of the queue, so the
// linear scan runs only for ports genuinely quiet at their horizon.
func (p *Port) sendBoundAt(nt Time) Time {
	if p.promiseUntil <= nt {
		return nt
	}
	if !p.k.HeadIs(p.promiseID) {
		return nt
	}
	b := p.promiseUntil
	if rest, ok := p.k.NextTimeExcluding(p.promiseID); ok && rest < b {
		b = rest
	}
	return b
}

// runBefore executes the shard's events strictly before hzn.  A lone
// port simply runs its kernel — the one-node-per-shard engine.  A
// fused shard interleaves its member kernels with the same
// conservative rule the coordinator applies across shards, evaluated
// locally with no mutex, no mailbox and no goroutine barrier: a member
// may run to the earliest instant any co-member could influence it,
//
//	bound(p) = min(hzn, min over q != p of sendBound(q) + lookahead)
//
// and because sendBound(q) is never below the global minimum next
// event, the earliest member always gets strictly past its own next
// event — the loop cannot stall.  Port-to-port posts go straight into
// the destination kernel (see Port.Post), which is sound for exactly
// the coordinator's reason: a post from a port executing at T is due
// at T+lookahead or later, and no co-member has run past that.
func (s *Shard) runBefore(hzn Time) {
	if len(s.ports) == 1 {
		p := s.p0
		p.hzn = hzn
		p.k.RunBefore(hzn)
		return
	}
	L := s.c.lookahead
	if len(s.nts) != len(s.ports) {
		s.nts = make([]Time, len(s.ports))
		s.sbs = make([]Time, len(s.ports))
		s.stamps = make([]uint64, len(s.ports))
		for i := range s.stamps {
			s.stamps[i] = ^uint64(0) // force the first refresh
		}
	}
	for {
		// Scan pass: refresh stale cache entries, find the earliest next
		// event and the two smallest send bounds (sb2 covers the member
		// holding sb1 — its own sends cannot bound it).  A member's
		// cached entry can only go stale by executing or by a schedule
		// change, and every schedule change — a delivery posted in, a
		// cross-port cancel, the member's own scheduling while it ran —
		// bumps its kernel stamp.
		m1 := MaxTime
		sb1, sb2 := MaxTime, MaxTime
		sb1i := -1
		for i, q := range s.ports {
			if q.k.stamp != s.stamps[i] {
				s.stamps[i] = q.k.stamp
				if nt, ok := q.k.NextTime(); ok {
					s.nts[i] = nt
					if q.promiseUntil > nt {
						s.sbs[i] = q.sendBoundAt(nt)
					} else {
						s.sbs[i] = nt
					}
				} else {
					s.nts[i] = MaxTime
					s.sbs[i] = MaxTime
				}
			}
			if t := s.nts[i]; t < m1 {
				m1 = t
			}
			if sb := s.sbs[i]; sb < sb1 {
				sb1, sb2, sb1i = sb, sb1, i
			} else if sb < sb2 {
				sb2 = sb
			}
		}
		if m1 >= hzn {
			return
		}
		// Run every member that has work inside its bound, all from the
		// bounds cached at the top of the pass (a mini-barrier, so one
		// scan is amortised over up to len(ports) member runs).  The
		// bound has two terms:
		//
		//   - the earliest co-member send, one lookahead out: a
		//     co-member q sends no earlier than sb(q), so nothing can
		//     land here before sb(q)+L.  Ordering within the pass cannot
		//     matter — deliveries posted by an earlier member arrive at
		//     or above every later member's bound, so no member executes
		//     a same-pass delivery, and every member's own sends stay at
		//     or above its (accurately cached) send bound.
		//
		//   - the member's OWN send bound, two lookaheads out: the
		//     member's first send of this pass, at T >= sb(p), reaches a
		//     co-member at T+L, and that co-member may react the very
		//     instant the delivery executes (the overlapped acknowledge
		//     does exactly this), landing a reply back here at T+2L.
		//     Without this term a member whose neighbours' queues are
		//     empty would run arbitrarily far past its own sends and the
		//     reply would arrive in its past.  Longer reaction chains
		//     only add lookaheads, and chains seeded by a third member r
		//     are covered by r's sb(r)+L term.
		//
		// sendBound(q) >= nextTime(q) >= m1 for every member, so the m1
		// holder always clears its own next event and the loop
		// progresses.
		for i, q := range s.ports {
			sb := sb1
			if i == sb1i {
				sb = sb2
			}
			b := hzn
			if sb < infTime && sb+L < b {
				b = sb + L
			}
			if own := s.sbs[i]; own < infTime && own+2*L < b {
				b = own + 2*L
			}
			if s.nts[i] < b {
				q.hzn = b
				// Mark the runner's entry stale: executing changes its
				// queue without necessarily bumping its stamp.
				s.stamps[i] = ^uint64(0)
				q.k.RunBefore(b)
				s.stLocal++
			}
		}
	}
}

// advanceTo moves every member clock forward to t without firing
// anything; the coordinator uses it to bring the whole system to the
// common limit of a bounded run.
func (s *Shard) advanceTo(t Time) {
	for _, p := range s.ports {
		p.k.AdvanceTo(t)
	}
}

// Horizon is the exclusive bound of the default port's current window.
func (s *Shard) Horizon() Time { return s.p0.hzn }

// Horizon is the exclusive bound of the port's current execution
// window: the coordinator window for a lone port, the tighter member
// bound inside a fused shard.
func (p *Port) Horizon() Time { return p.hzn }

// SetOffset sets the default port kernel's virtual-time displacement.
func (s *Shard) SetOffset(d Time) { s.p0.SetOffset(d) }

// SetOffset sets the port kernel's virtual-time displacement.  Each
// port owns its kernel, so fused runners' displacements never
// interfere.
func (p *Port) SetOffset(d Time) { p.k.SetOffset(d) }

// Stamp mirrors Kernel.Stamp for batch runners.
func (s *Shard) Stamp() uint64 { return s.p0.Stamp() }

// Stamp mirrors Kernel.Stamp for batch runners.
func (p *Port) Stamp() uint64 { return p.k.Stamp() }

// AdvanceTo moves the default port's clock forward without firing
// anything.
func (s *Shard) AdvanceTo(t Time) { s.p0.AdvanceTo(t) }

// AdvanceTo moves the port's clock forward without firing anything; a
// batch runner uses it so the clock ends at the last executed
// instruction, exactly where one-event-per-instruction stepping would
// have left it.
func (p *Port) AdvanceTo(t Time) { p.k.AdvanceTo(t) }

// Post delivers fn to another shard's default port at the given
// absolute time, which must be at least one lookahead in this shard's
// future — the conservative contract the whole engine rests on.
func (s *Shard) Post(dst *Shard, at Time, fn func()) {
	s.p0.Post(dst.p0, at, fn)
}

// Post delivers fn into another port's timeline at the given absolute
// time, at least one lookahead in this port's future.  When the ports
// share a shard — fusion — the delivery is scheduled directly on the
// destination kernel at its exact timestamp, skipping mailbox and
// barrier; the key carries the same (origin rank, per-port sequence)
// identity a mailbox delivery would, so the destination kernel's event
// order is identical either way.
func (p *Port) Post(dst *Port, at Time, fn func()) {
	if dst.s == p.s {
		p.deliverLocal(dst, at, fn)
		return
	}
	p.s.c.post(p, dst, at, fn)
}

// deliverLocal schedules a keyed delivery on a co-member's kernel —
// the fused counterpart of a mailbox post.  Members of one shard never
// execute concurrently, so the destination kernel is quiescent (its
// runner offset restored) whenever this runs.
func (p *Port) deliverLocal(dst *Port, at Time, fn func()) {
	seq := p.xseq
	p.xseq++
	p.s.stFused++
	dst.k.ScheduleDelivery(at, deliveryKey(p.rank, seq), fn)
}

// CrossPath reports how scheduled work travels from src's clock domain
// to dst's.  For the same port (or both plain kernels) it returns a
// nil post function and zero latency: the caller should schedule
// directly, today's fast path.  For two distinct ports of one
// coordinator it returns a post function and the coordinator's
// lookahead — the wire propagation model every port-to-port delivery
// respects, whether it crosses shards through the mailbox or stays
// inside a fused shard.  Using the posted path for fused pairs too is
// what makes results partition-invariant: timing and ordering match
// the mailbox path exactly.
func CrossPath(src, dst Clock) (post func(at Time, fn func()), latency Time) {
	sp, dp := portOf(src), portOf(dst)
	if sp == nil || dp == nil || sp == dp || sp.s.c != dp.s.c {
		return nil, 0
	}
	return func(at Time, fn func()) { sp.Post(dp, at, fn) }, sp.s.c.lookahead
}

// SameShard reports whether two clocks execute on the same shard — and
// therefore never concurrently.  Callers use it to decide whether
// sender-owned state may be read from delivery callbacks: inside one
// shard the members run sequentially, while distinct shards run on
// different workers in the same window.
func SameShard(src, dst Clock) bool {
	sp, dp := portOf(src), portOf(dst)
	return sp != nil && dp != nil && sp.s == dp.s
}

// portOf resolves a Clock to the port identity CrossPath reasons
// about: a Port itself, a Shard's default port, or nil for a plain
// kernel.
func portOf(c Clock) *Port {
	switch v := c.(type) {
	case *Port:
		return v
	case *Shard:
		return v.p0
	default:
		return nil
	}
}
