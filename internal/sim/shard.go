package sim

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// This file implements the sharded parallel engine: per-shard event
// kernels advanced in bounded windows by a coordinator, with
// conservative Chandy–Misra-style synchronisation and no null
// messages.
//
// Every cross-shard interaction has a minimum latency (for transputer
// links, the shortest packet's wire time), so an event posted by shard
// A while executing at time T cannot be due at another shard before
// T + lookahead.  The coordinator therefore lets each shard run
// independently up to a per-shard horizon
//
//	horizon(s) = lookahead + min over r != s of nextEvent(r)
//
// (no other shard can cause anything in s before that), then meets all
// shards at a barrier, releases the cross-shard mailbox in a canonical
// order, and opens the next window.  Shard execution inside a window
// is pure single-threaded event processing, so results are bit-for-bit
// identical whether windows run on one worker or many.

// crossEvent is one mailbox entry: an event produced by shard src
// while executing a window, due on shard dst at time at.  Entries are
// released at the barrier sorted by (at, src, seq) — a total order
// that no amount of worker parallelism can perturb.
type crossEvent struct {
	at  Time
	src int
	seq uint64
	dst int
	fn  func()
}

// Coordinator advances a set of shards in conservative time windows.
type Coordinator struct {
	lookahead Time
	shards    []*Shard
	workers   int

	mu sync.Mutex
	xq []crossEvent

	// now is the global low-water mark: the limit of the last bounded
	// run, so an empty system still reports time correctly.
	now Time

	// onFlush, when set, is called at every barrier with the time below
	// which no further events can occur; observers use it to merge and
	// release per-shard probe buffers in deterministic order.
	onFlush func(upTo Time, final bool)

	// Window dispatch state (see runWindow).  claim packs the current
	// window's epoch, shard count and next-unclaimed index into one
	// word, so helpers can take work with a single compare-and-swap
	// and a stale helper can never claim into the wrong window: the
	// epoch bits make every cross-window CAS fail.
	claim    atomic.Uint64
	active   []*Shard
	tokenCh  chan struct{}
	sleepers atomic.Int32
	helpers  int
	windowWg sync.WaitGroup

	// Per-pair wiring (see horizons).  With no Wire calls the
	// coordinator treats the shard graph as complete at the global
	// lookahead — the PR-3 rule.  Once wired, w[a][b] is the direct
	// lookahead from shard a to shard b (infTime when unwired),
	// wcount[a][b] counts parallel links so severing one of several
	// keeps the pair finite, and dist is the all-pairs shortest-path
	// closure rebuilt lazily after wiring changes.
	wired      bool
	w          [][]Time
	wcount     [][]int
	dist       [][]Time
	selfInf    []Time // shortest round trip leaving and re-entering a shard
	distDirty  bool
	sendBounds []Time // per-barrier scratch
	unwires    []unwire

	// byDist[s] holds the sources that can reach s sorted by influence
	// distance (nearest first), rebuilt with dist; minSendBound is the
	// per-barrier minimum of sendBounds.  Together they let horizonFor
	// cut its scan off early: once d + minSendBound cannot beat the
	// bound found so far, no farther source can either.
	byDist       [][]distEntry
	minSendBound Time

	// Per-barrier scratch, reused to keep the barrier loop
	// allocation-free: each shard's next event time (MaxTime when its
	// queue is empty) and the active-shard list for the window.
	nts       []Time
	activeBuf []*Shard
}

// distEntry is one source in a shard's nearest-first influence list.
type distEntry struct {
	d Time
	q int32
}

// unwire is a pending wiring removal: it takes effect only at a barrier
// where every event at or before cut has already executed, so in-flight
// traffic from before the sever is already in the destination kernels.
type unwire struct {
	a, b int
	cut  Time
}

// infTime marks an absent path; far enough from MaxTime that sums of
// two never overflow.
const infTime = MaxTime / 4

// claim-word layout: epoch(32) | len(16) | idx(16).
const (
	claimEpochShift = 32
	claimLenShift   = 16
	claimMask       = 0xffff
)

// NewCoordinator builds a coordinator whose conservative lookahead is
// the given minimum cross-shard event latency.
func NewCoordinator(lookahead Time) *Coordinator {
	if lookahead <= 0 {
		panic("sim: coordinator lookahead must be positive")
	}
	return &Coordinator{lookahead: lookahead, workers: 1}
}

// Lookahead returns the coordinator's window lookahead.
func (c *Coordinator) Lookahead() Time { return c.lookahead }

// SetWorkers sets how many OS goroutines execute shards inside each
// window.  The result is identical for every value; only wall-clock
// time changes.  Values below 1 select 1.
func (c *Coordinator) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	c.workers = n
}

// Workers returns the configured worker count.
func (c *Coordinator) Workers() int { return c.workers }

// OnFlush registers the barrier callback (see Coordinator doc).  Only
// one callback is supported; registering replaces the previous one.
func (c *Coordinator) OnFlush(fn func(upTo Time, final bool)) { c.onFlush = fn }

// NewShard adds a shard and returns it.
func (c *Coordinator) NewShard() *Shard {
	s := &Shard{c: c, id: len(c.shards), k: NewKernel()}
	c.shards = append(c.shards, s)
	return s
}

// Wire records a direct link from shard a to shard b with the given
// minimum latency.  Calling Wire at least once switches the coordinator
// from the complete-graph default to horizons derived from actual
// wiring: pairs with no connecting path contribute no bound at all, so
// disjoint components (and fully severed nodes) synchronise only
// internally.  Parallel links stack; each is removed by one Unwire.
func (c *Coordinator) Wire(a, b int, latency Time) {
	if latency <= 0 {
		panic("sim: wire latency must be positive")
	}
	c.ensureMatrix()
	c.wcount[a][b]++
	if latency < c.w[a][b] {
		c.w[a][b] = latency
	}
	c.distDirty = true
}

// Unwire schedules the removal of one a→b link, effective once the
// whole system has executed past cut (the simulated instant the link
// stopped carrying traffic).  The deferral is what makes removal safe:
// by then every event that could have used the link has fired and its
// deliveries sit in the destination kernels, so widening the horizon
// afterwards cannot lose causality.
//
// Unwire may be called from shard goroutines mid-window (a fault
// schedule severing a link); the pending list is guarded by the
// coordinator mutex and drained at the next barrier.  An Unwire with
// no prior Wire (an unwired coordinator) is recorded but never
// applied.
func (c *Coordinator) Unwire(a, b int, cut Time) {
	c.mu.Lock()
	c.unwires = append(c.unwires, unwire{a: a, b: b, cut: cut})
	c.mu.Unlock()
}

func (c *Coordinator) ensureMatrix() {
	n := len(c.shards)
	if c.wired && len(c.w) == n {
		return
	}
	w := make([][]Time, n)
	wc := make([][]int, n)
	for i := range w {
		w[i] = make([]Time, n)
		wc[i] = make([]int, n)
		for j := range w[i] {
			w[i][j] = infTime
		}
		// Copy any earlier, smaller matrix (shards added after wiring
		// started).
		if i < len(c.w) {
			copy(w[i], c.w[i])
			copy(wc[i], c.wcount[i])
		}
	}
	c.w, c.wcount = w, wc
	c.wired = true
	c.distDirty = true
}

// applyUnwires retires pending link removals whose cut time the whole
// system has passed.  Called between windows, with min1 the earliest
// pending event anywhere.
func (c *Coordinator) applyUnwires(min1 Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	kept := c.unwires[:0]
	for _, u := range c.unwires {
		if min1 <= u.cut {
			kept = append(kept, u)
			continue
		}
		if c.wcount[u.a][u.b] > 0 {
			c.wcount[u.a][u.b]--
			if c.wcount[u.a][u.b] == 0 {
				c.w[u.a][u.b] = infTime
				c.distDirty = true
			}
		}
	}
	c.unwires = kept
}

// refreshDist rebuilds the all-pairs shortest-path closure and the
// per-shard minimum round trip.  Shard counts are small and wiring
// changes are rare (a sever), so Floyd–Warshall is plenty.
func (c *Coordinator) refreshDist() {
	if !c.distDirty {
		return
	}
	c.distDirty = false
	n := len(c.shards)
	if len(c.dist) != n {
		c.dist = make([][]Time, n)
		for i := range c.dist {
			c.dist[i] = make([]Time, n)
		}
		c.selfInf = make([]Time, n)
		c.sendBounds = make([]Time, n)
	}
	for i := 0; i < n; i++ {
		copy(c.dist[i], c.w[i])
		c.dist[i][i] = 0
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := c.dist[i][k]
			if dik >= infTime {
				continue
			}
			for j := 0; j < n; j++ {
				if d := dik + c.dist[k][j]; d < c.dist[i][j] {
					c.dist[i][j] = d
				}
			}
		}
	}
	for s := 0; s < n; s++ {
		rt := infTime
		for r := 0; r < n; r++ {
			if r == s {
				continue
			}
			if d := c.dist[s][r] + c.dist[r][s]; d < rt {
				rt = d
			}
		}
		c.selfInf[s] = rt
	}
	// byDist[s] lists every source that can influence s, nearest
	// first, so the per-barrier horizon scan can stop as soon as the
	// remaining distances cannot beat the minimum found.  Unreachable
	// sources are left out entirely: they never contribute a bound.
	if len(c.byDist) != n {
		c.byDist = make([][]distEntry, n)
	}
	for s := 0; s < n; s++ {
		list := c.byDist[s][:0]
		for q := 0; q < n; q++ {
			d := c.dist[q][s]
			if q == s {
				d = c.selfInf[s]
			}
			if d >= infTime {
				continue
			}
			list = append(list, distEntry{d: d, q: int32(q)})
		}
		sort.Slice(list, func(i, j int) bool { return list[i].d < list[j].d })
		c.byDist[s] = list
	}
}

// Shards returns the shards in creation order.
func (c *Coordinator) Shards() []*Shard { return c.shards }

// Now returns the global simulated time: the furthest any shard has
// executed (or the limit of the last bounded run if later).
func (c *Coordinator) Now() Time {
	t := c.now
	for _, s := range c.shards {
		if n := s.k.Now(); n > t {
			t = n
		}
	}
	return t
}

// drain releases the cross-shard mailbox into the destination kernels
// in (at, src, seq) order.  Called between windows only.
func (c *Coordinator) drain() {
	c.mu.Lock()
	q := c.xq
	c.xq = nil
	c.mu.Unlock()
	if len(q) == 0 {
		return
	}
	// Insertion sort: the mailbox is tiny (a window's worth of link
	// packets) and often nearly ordered.
	for i := 1; i < len(q); i++ {
		for j := i; j > 0 && crossLess(q[j], q[j-1]); j-- {
			q[j], q[j-1] = q[j-1], q[j]
		}
	}
	for _, e := range q {
		// The key extends the (at, src, seq) order into the kernel heap
		// itself, so a delivery's place among same-instant events never
		// depends on which barrier injected it (see Kernel.less).
		c.shards[e.dst].k.ScheduleDelivery(e.at, uint64(e.src+1)<<48|e.seq, e.fn)
	}
}

func crossLess(a, b crossEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// flush invokes the barrier callback.
func (c *Coordinator) flush(upTo Time, final bool) {
	if c.onFlush != nil {
		c.onFlush(upTo, final)
	}
}

// Run fires events until every shard's queue (and the mailbox) drains,
// and returns the final time.
func (c *Coordinator) Run() Time {
	c.run(MaxTime, false)
	return c.Now()
}

// RunUntil fires events with time <= limit.  It returns true if the
// system drained before the limit; otherwise every shard's clock is
// advanced to the limit (matching Kernel.RunUntil on a lone kernel).
func (c *Coordinator) RunUntil(limit Time) bool {
	return c.run(limit, true)
}

func (c *Coordinator) run(limit Time, bounded bool) bool {
	stop := c.startPool()
	defer stop()
	if len(c.nts) != len(c.shards) {
		c.nts = make([]Time, len(c.shards))
	}
	for {
		c.drain()
		// min1/min2: the two earliest next-event times across shards,
		// for the per-shard horizon rule.  Each shard's next-event time
		// is cached for the rest of the barrier (send bounds, the
		// active-shard scan): peeking costs a cancellation check.
		min1, min2 := MaxTime, MaxTime
		owner := -1
		for _, s := range c.shards {
			t, ok := s.k.NextTime()
			if !ok {
				c.nts[s.id] = MaxTime
				continue
			}
			c.nts[s.id] = t
			if t < min1 {
				min1, min2 = t, min1
				owner = s.id
			} else if t < min2 {
				min2 = t
			}
		}
		if min1 == MaxTime {
			c.flush(MaxTime, true)
			return true
		}
		c.flush(min1, false)
		if bounded && min1 > limit {
			for _, s := range c.shards {
				s.k.AdvanceTo(limit)
			}
			if c.now < limit {
				c.now = limit
			}
			return false
		}
		if c.wired {
			c.applyUnwires(min1)
			c.refreshDist()
			minSb := MaxTime
			for _, q := range c.shards {
				sb := q.sendBoundAt(c.nts[q.id])
				c.sendBounds[q.id] = sb
				if sb < minSb {
					minSb = sb
				}
			}
			c.minSendBound = minSb
		}
		active := c.activeBuf[:0]
		for _, s := range c.shards {
			// The sound window: a shard may run only to the earliest
			// instant any cross-shard event could reach it.  Posts made
			// this window are due no earlier than min1+lookahead (every
			// fired event is at >= min1), and a peer cannot react to a
			// post before the next barrier, so everyone may run to
			// min1+lookahead.  The min1 owner alone gets more: events
			// addressed to it come from shards whose own events are at
			// >= min2, so it may run to min(min2, min1+lookahead) +
			// lookahead.  A lone shard has no one to hear from at all.
			// (With wiring information the generalised rule in horizonFor
			// replaces this; on a complete graph with no send promises it
			// reduces to exactly this formula.)
			var hzn Time
			switch {
			case len(c.shards) == 1:
				hzn = MaxTime
			case c.wired:
				hzn = c.horizonFor(s)
			case s.id == owner:
				h2 := min2
				if h2 > min1+c.lookahead {
					h2 = min1 + c.lookahead
				}
				hzn = h2 + c.lookahead
			default:
				hzn = min1 + c.lookahead
			}
			if bounded && hzn > limit+1 {
				hzn = limit + 1
			}
			s.hzn = hzn
			if c.nts[s.id] < hzn {
				active = append(active, s)
			}
		}
		c.activeBuf = active
		c.runWindow(active)
	}
}

// horizonFor computes a shard's window bound from actual wiring: the
// earliest instant externally-visible activity anywhere could reach s.
// Shard q's first possible external action is sendBound(q) — its next
// event, except that a runner's quiet promise discounts the promised
// continuation up to the promised time — and the fastest route from q
// to s adds dist[q][s] (for q = s, the shortest round trip out and
// back, since a shard's own event can bound it only via an echo).
// Pairs with no connecting path contribute nothing: a severed or
// unwired neighbourhood cannot affect s at all.  On a complete graph
// with no promises this reduces exactly to the min1/min2 rule.
func (c *Coordinator) horizonFor(s *Shard) Time {
	hzn := MaxTime
	minSb := c.minSendBound
	for _, e := range c.byDist[s.id] {
		if hzn < MaxTime && e.d+minSb >= hzn {
			break
		}
		sb := c.sendBounds[e.q]
		if sb >= infTime {
			continue
		}
		if h := sb + e.d; h < hzn {
			hzn = h
		}
	}
	return hzn
}

// startPool launches the helper goroutines for a run.  With one worker
// (or one shard) no goroutines are started and windows run inline.
// The coordinator itself executes shards too, so a run uses workers-1
// helpers: on a machine with nothing to run them on, the coordinator
// simply claims every shard itself and a window costs a handful of
// atomic operations more than sequential execution.
func (c *Coordinator) startPool() (stop func()) {
	n := c.workers
	if n > len(c.shards) {
		n = len(c.shards)
	}
	if n <= 1 {
		return func() {}
	}
	c.helpers = n - 1
	c.tokenCh = make(chan struct{}, c.helpers)
	var alive sync.WaitGroup
	alive.Add(c.helpers)
	for i := 0; i < c.helpers; i++ {
		go func() {
			defer alive.Done()
			c.helperLoop()
		}()
	}
	ch := c.tokenCh
	return func() {
		close(ch)
		alive.Wait()
		c.tokenCh = nil
		c.helpers = 0
	}
}

// helperLoop claims shards whenever a window is open.  Between windows
// a helper spins briefly on the claim word (windows are short, often
// only a few hundred simulated nanoseconds apart), then parks on the
// token channel until the coordinator wakes it or the run ends.
func (c *Coordinator) helperLoop() {
	const spinBudget = 1 << 12
	spins := 0
	for {
		if c.tryClaim() {
			spins = 0
			continue
		}
		spins++
		if spins < spinBudget {
			if spins%64 == 0 {
				runtime.Gosched()
			}
			continue
		}
		// Park.  Re-check after registering as a sleeper so a window
		// opened concurrently cannot be missed: the coordinator reads
		// sleepers after publishing the claim word.
		c.sleepers.Add(1)
		if c.tryClaim() {
			c.sleepers.Add(-1)
			spins = 0
			continue
		}
		_, ok := <-c.tokenCh
		c.sleepers.Add(-1)
		if !ok {
			return
		}
		spins = 0
	}
}

// tryClaim takes one shard of the current window, if any remains, and
// runs it.  The epoch bits in the claim word pin the coordinator: a
// successful CAS means the window it belongs to is still open (the
// coordinator cannot pass the barrier until every claimed shard is
// done), so c.active is stable and safe to read.
func (c *Coordinator) tryClaim() bool {
	for {
		cur := c.claim.Load()
		idx := cur & claimMask
		if idx >= (cur>>claimLenShift)&claimMask {
			return false
		}
		if !c.claim.CompareAndSwap(cur, cur+1) {
			continue
		}
		s := c.active[idx]
		s.k.RunBefore(s.hzn)
		c.windowWg.Done()
		return true
	}
}

// runWindow executes one window: every active shard runs its events
// strictly before its horizon.  The barrier (WaitGroup) makes all
// shard work of this window happen-before the coordinator resumes.
func (c *Coordinator) runWindow(active []*Shard) {
	if c.tokenCh == nil || len(active) == 1 {
		for _, s := range active {
			s.k.RunBefore(s.hzn)
		}
		return
	}
	if len(active) > claimMask {
		panic("sim: too many shards in one window")
	}
	// Publish the window.  The WaitGroup is armed before the claim
	// word: a helper that claims the first shard instantly must find
	// the barrier already counting it.
	c.active = active
	c.windowWg.Add(len(active))
	epoch := (c.claim.Load() >> claimEpochShift) + 1
	c.claim.Store(epoch<<claimEpochShift | uint64(len(active))<<claimLenShift)
	if c.sleepers.Load() > 0 {
		// Wake parked helpers, at most one per remaining shard.
		for i := 0; i < c.helpers && i < len(active)-1; i++ {
			select {
			case c.tokenCh <- struct{}{}:
			default:
				i = c.helpers // buffer full: every helper already has a wakeup pending
			}
		}
	}
	// The coordinator works the window too, then waits out the stragglers.
	for c.tryClaim() {
	}
	c.windowWg.Wait()
}

// post appends a cross-shard event to the mailbox.  Safe to call from
// any shard goroutine during a window.
func (c *Coordinator) post(src, dst *Shard, at Time, fn func()) {
	seq := atomic.AddUint64(&src.xseq, 1)
	c.mu.Lock()
	c.xq = append(c.xq, crossEvent{at: at, src: src.id, seq: seq, dst: dst.id, fn: fn})
	c.mu.Unlock()
}

// shardIDShift places the owning shard (plus one) in the top bits of
// an EventID, so a handle can be routed back to the kernel that issued
// it even when it crosses shards.
const shardIDShift = 48

// Shard is one partition of the simulation: a kernel plus its window
// horizon.  It implements the same Clock interface as a Kernel, and
// additionally the batch-driver surface (NextTime, Horizon, SetOffset,
// Stamp) used by instruction runners.
type Shard struct {
	c    *Coordinator
	id   int
	k    *Kernel
	hzn  Time
	xseq uint64

	// The current quiet promise (see PromiseQuiet): the pending event
	// promiseID will not act externally before promiseUntil.  Written
	// only by the shard's own window execution, read only at barriers.
	promiseID    EventID
	promiseUntil Time
}

// ID returns the shard's index within its coordinator.
func (s *Shard) ID() int { return s.id }

// Coordinator returns the owning coordinator.
func (s *Shard) Coordinator() *Coordinator { return s.c }

// Now returns the shard's current (virtual) time.
func (s *Shard) Now() Time { return s.k.Now() }

// Pending reports the number of scheduled, uncancelled events on this
// shard.  It deliberately ignores the coordinator mailbox: the answer
// must not depend on how far other shards have progressed inside the
// current window.
func (s *Shard) Pending() int { return s.k.Pending() }

// Schedule runs fn at the given time on this shard.  The returned ID
// carries the shard's identity, so it can be cancelled from anywhere.
func (s *Shard) Schedule(at Time, fn func()) EventID {
	return s.tag(s.k.Schedule(at, fn))
}

// After schedules fn after a delay from the shard's current time.
func (s *Shard) After(d Time, fn func()) EventID {
	return s.tag(s.k.After(d, fn))
}

// Cancel prevents a scheduled event from firing.  An event owned by
// another shard cannot be revoked retroactively: the cancellation is
// posted through the mailbox and takes effect at the next window
// barrier at least one lookahead ahead — if the event fires first, the
// cancel is a no-op, exactly like any cross-shard signal.
func (s *Shard) Cancel(id EventID) {
	owner := int(id>>shardIDShift) - 1
	raw := id & (1<<shardIDShift - 1)
	switch {
	case owner < 0 || owner >= len(s.c.shards):
		panic(fmt.Sprintf("sim: cancel of foreign event id %#x", uint64(id)))
	case owner == s.id:
		s.k.Cancel(raw)
	default:
		dst := s.c.shards[owner]
		s.c.post(s, dst, s.Now()+s.c.lookahead, func() { dst.k.Cancel(raw) })
	}
}

func (s *Shard) tag(id EventID) EventID {
	return id | EventID(s.id+1)<<shardIDShift
}

// NextTime reports the earliest pending event on this shard.
func (s *Shard) NextTime() (Time, bool) { return s.k.NextTime() }

// PromiseQuiet records a batch runner's send promise: the pending
// event id (the runner's continuation) will not start or acknowledge
// any link transfer before the given time, because the predecoded
// instructions ahead of it are pure compute with a known minimum cycle
// cost.  The promise dies with the event: once id fires it is ignored,
// and the runner issues a fresh one (or none) at its next batch end.
func (s *Shard) PromiseQuiet(id EventID, until Time) {
	s.promiseID = id & (1<<shardIDShift - 1)
	s.promiseUntil = until
}

// sendBoundAt is the earliest instant this shard could act in a way
// visible outside it, given nt, its already-peeked next event time.
// Without a live promise that is simply nt; with one, the promised
// continuation is discounted up to the promised time — the other
// pending events still bound the answer, because any of them could
// cascade into a send at its own instant.  The promise can only
// matter when the promised event is the head of the queue: any other
// head is an unpromised event already bounding sends at nt, so the
// (linear) scan for the second-earliest event runs only for shards
// genuinely quiet at their horizon.
func (s *Shard) sendBoundAt(nt Time) Time {
	if nt == MaxTime || s.promiseUntil <= nt {
		return nt
	}
	if _, head, ok := s.k.NextEvent(); !ok || head != s.promiseID {
		return nt
	}
	b := s.promiseUntil
	if rest, ok := s.k.NextTimeExcluding(s.promiseID); ok && rest < b {
		b = rest
	}
	return b
}

// Horizon is the exclusive bound of the shard's current window.
func (s *Shard) Horizon() Time { return s.hzn }

// SetOffset sets the shard kernel's virtual-time displacement.
func (s *Shard) SetOffset(d Time) { s.k.SetOffset(d) }

// Stamp mirrors Kernel.Stamp for batch runners.
func (s *Shard) Stamp() uint64 { return s.k.Stamp() }

// AdvanceTo moves the shard clock forward without firing anything; a
// batch runner uses it so the clock ends at the last executed
// instruction, exactly where one-event-per-instruction stepping would
// have left it.
func (s *Shard) AdvanceTo(t Time) { s.k.AdvanceTo(t) }

// Post delivers fn to another shard at the given absolute time, which
// must be at least one lookahead in this shard's future — the
// conservative contract the whole engine rests on.
func (s *Shard) Post(dst *Shard, at Time, fn func()) {
	s.c.post(s, dst, at, fn)
}

// CrossPath reports how scheduled work travels from src's clock domain
// to dst's.  For clocks in the same domain (the same shard, or both
// plain kernels) it returns a nil post function and zero latency: the
// caller should schedule directly, today's fast path.  For two shards
// of one coordinator it returns a mailbox post function and the
// coordinator's lookahead, the minimum latency every cross-shard event
// must respect.
func CrossPath(src, dst Clock) (post func(at Time, fn func()), latency Time) {
	ss, ok1 := src.(*Shard)
	ds, ok2 := dst.(*Shard)
	if !ok1 || !ok2 || ss == ds || ss.c != ds.c {
		return nil, 0
	}
	return func(at Time, fn func()) { ss.Post(ds, at, fn) }, ss.c.lookahead
}
