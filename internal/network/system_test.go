package network_test

import (
	"bytes"

	"testing"

	"transputer/internal/asm"
	"transputer/internal/core"
	"transputer/internal/network"
	"transputer/internal/sim"
)

func load(t *testing.T, n *network.Node, src string) {
	t.Helper()
	a, err := asm.Assemble(src, n.M.BytesPerWord())
	if err != nil {
		t.Fatalf("assemble for %s: %v", n.M.Name(), err)
	}
	if err := n.Load(a.Image); err != nil {
		t.Fatalf("load %s: %v", n.M.Name(), err)
	}
}

func cfg() core.Config { return core.T424().WithMemory(64 * 1024) }

// TestPingFourBytes sends one 4-byte message between two transputers
// and checks both the value and the paper's "about 6 microseconds"
// latency figure (section 4.2).
func TestPingFourBytes(t *testing.T) {
	s := network.NewSystem()
	a := s.MustAddTransputer("a", cfg())
	b := s.MustAddTransputer("b", cfg())
	s.MustConnect(a, 0, b, 0)

	load(t, a, `
	ldc 42
	mint
	outword        -- link 0 output channel is at MOSTNEG
	stopp
`)
	load(t, b, `
	ldlp 1
	mint
	ldnlp 4        -- link 0 input channel
	ldc 4
	in
	stopp
`)
	rep := s.Run(sim.Millisecond)
	if !rep.Settled {
		t.Fatalf("system did not settle: %+v", rep)
	}
	if got := b.M.Local(1); got != 42 {
		t.Errorf("received %d, want 42", got)
	}
	// 4 bytes at 1.1 µs each plus instruction overhead at both ends:
	// the paper quotes about 6 µs.
	if rep.Time < 4*sim.Microsecond || rep.Time > 8*sim.Microsecond {
		t.Errorf("4-byte message took %v, want roughly 6µs", rep.Time)
	}
	if err := a.M.Fault(); err != nil {
		t.Error(err)
	}
	if err := b.M.Fault(); err != nil {
		t.Error(err)
	}
}

// TestBothDirections exercises the pair of channels a link provides.
func TestBothDirections(t *testing.T) {
	s := network.NewSystem()
	a := s.MustAddTransputer("a", cfg())
	b := s.MustAddTransputer("b", cfg())
	s.MustConnect(a, 2, b, 3)

	// a sends 7 on link 2, then receives the reply (value+1) on the
	// same link's input channel.
	load(t, a, `
	ldc 7
	mint
	ldnlp 2        -- link 2 output
	outword
	ldlp 1
	mint
	ldnlp 6        -- link 2 input
	ldc 4
	in
	stopp
`)
	load(t, b, `
	ldlp 1
	mint
	ldnlp 7        -- link 3 input
	ldc 4
	in
	ldl 1
	adc 1
	stl 1
	ldl 1
	mint
	ldnlp 3        -- link 3 output
	outword
	stopp
`)
	rep := s.Run(sim.Millisecond)
	if !rep.Settled {
		t.Fatalf("did not settle: %+v", rep)
	}
	if got := a.M.Local(1); got != 8 {
		t.Errorf("round trip got %d, want 8", got)
	}

}

// TestHostProtocol runs a program that prints through the host device.
func TestHostProtocol(t *testing.T) {
	s := network.NewSystem()
	n := s.MustAddTransputer("app", cfg())
	var out bytes.Buffer
	host, err := s.AttachHost(n, 0, &out)
	if err != nil {
		t.Fatal(err)
	}
	load(t, n, `
	ldc 1          -- put char command
	mint
	outword
	ldc 'h'
	mint
	outword
	ldc 1
	mint
	outword
	ldc 'i'
	mint
	outword
	ldc 2          -- put word command
	mint
	outword
	ldc 1234
	mint
	outword
	ldc 4          -- exit command
	mint
	outword
	stopp
`)
	rep := s.Run(10 * sim.Millisecond)
	if !rep.Settled {
		t.Fatalf("did not settle: %+v", rep)
	}
	if !host.Done {
		t.Error("host did not receive exit")
	}
	if got := out.String(); got != "hi1234\n" {
		t.Errorf("output = %q, want %q", got, "hi1234\n")
	}
	if len(host.Values) != 1 || host.Values[0] != 1234 {
		t.Errorf("values = %v", host.Values)
	}
}

// TestHostInput: the program requests a word from the host queue.
func TestHostInput(t *testing.T) {
	s := network.NewSystem()
	n := s.MustAddTransputer("app", cfg())
	host, err := s.AttachHost(n, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	host.QueueInput(77)
	load(t, n, `
	ldc 5          -- get word command
	mint
	outword
	ldlp 1
	mint
	ldnlp 4        -- link 0 input
	ldc 4
	in
	ldc 2          -- echo it back
	mint
	outword
	ldl 1
	mint
	outword
	ldc 4
	mint
	outword
	stopp
`)
	rep := s.Run(10 * sim.Millisecond)
	if !rep.Settled || !host.Done {
		t.Fatalf("rep=%+v done=%v", rep, host.Done)
	}
	if n.M.Local(1) != 77 {
		t.Errorf("program read %d, want 77", n.M.Local(1))
	}
	if len(host.Values) != 1 || host.Values[0] != 77 {
		t.Errorf("echoed %v", host.Values)
	}
}

// TestAlternativeOverLinks: a transputer ALTs over two link inputs;
// the message arrives on the second.
func TestAlternativeOverLinks(t *testing.T) {
	s := network.NewSystem()
	mid := s.MustAddTransputer("mid", cfg())
	left := s.MustAddTransputer("left", cfg())
	right := s.MustAddTransputer("right", cfg())
	s.MustConnect(left, 0, mid, 0)
	s.MustConnect(right, 0, mid, 1)

	// Only right sends.
	load(t, left, "\tstopp\n")
	load(t, right, `
	ldc 55
	mint
	outword
	stopp
`)
	load(t, mid, `
	alt
	ldc 1
	mint
	ldnlp 4        -- link 0 in
	enbc
	ldc 1
	mint
	ldnlp 5        -- link 1 in
	enbc
	altwt
	ldc b0-dend
	ldc 1
	mint
	ldnlp 4
	disc
	ldc b1-dend
	ldc 1
	mint
	ldnlp 5
	disc
	altend
dend:
b0:
	ldlp 1
	mint
	ldnlp 4
	ldc 4
	in
	ldc 1
	stl 2
	j done
b1:
	ldlp 1
	mint
	ldnlp 5
	ldc 4
	in
	ldc 2
	stl 2
	j done
done:
	stopp
`)
	rep := s.Run(10 * sim.Millisecond)
	if !rep.Settled {
		t.Fatalf("did not settle: %+v", rep)
	}
	if mid.M.Local(1) != 55 || mid.M.Local(2) != 2 {
		t.Errorf("got value %d from branch %d, want 55 from 2",
			mid.M.Local(1), mid.M.Local(2))
	}
}

// TestPipelineChain forwards a word along a chain of four transputers.
func TestPipelineChain(t *testing.T) {
	s := network.NewSystem()
	n0 := s.MustAddTransputer("n0", cfg())
	n1 := s.MustAddTransputer("n1", cfg())
	n2 := s.MustAddTransputer("n2", cfg())
	n3 := s.MustAddTransputer("n3", cfg())
	s.MustConnect(n0, 1, n1, 0)
	s.MustConnect(n1, 1, n2, 0)
	s.MustConnect(n2, 1, n3, 0)

	load(t, n0, `
	ldc 5
	mint
	ldnlp 1        -- link 1 out
	outword
	stopp
`)
	forward := `
	ldlp 1
	mint
	ldnlp 4        -- link 0 in
	ldc 4
	in
	ldl 1
	adc 1
	stl 1
	ldlp 1
	mint
	ldnlp 1        -- link 1 out
	ldc 4
	out
	stopp
`
	load(t, n1, forward)
	load(t, n2, forward)
	load(t, n3, `
	ldlp 1
	mint
	ldnlp 4
	ldc 4
	in
	stopp
`)
	rep := s.Run(sim.Millisecond)
	if !rep.Settled {
		t.Fatalf("did not settle: %+v", rep)
	}
	if got := n3.M.Local(1); got != 7 {
		t.Errorf("end of chain got %d, want 7 (5 incremented twice)", got)
	}
}

// TestTopologyErrors covers connection validation.
func TestTopologyErrors(t *testing.T) {
	s := network.NewSystem()
	a := s.MustAddTransputer("a", cfg())
	b := s.MustAddTransputer("b", cfg())
	if _, err := s.AddTransputer("a", cfg()); err == nil {
		t.Error("duplicate name should fail")
	}
	if err := s.Connect(a, 4, b, 0); err == nil {
		t.Error("link 4 should be rejected")
	}
	if err := s.Connect(a, 0, a, 0); err == nil {
		t.Error("self-connection of one link should be rejected")
	}
	if err := s.Connect(a, 0, b, 0); err != nil {
		t.Errorf("valid connect: %v", err)
	}
	if err := s.Connect(a, 0, b, 1); err == nil {
		t.Error("double use of a link should be rejected")
	}
	if _, ok := s.Node("a"); !ok {
		t.Error("lookup by name failed")
	}
	if len(s.Nodes()) != 2 {
		t.Errorf("nodes = %d", len(s.Nodes()))
	}
}

// TestUnconnectedLinkBlocks: output on an unwired link never completes,
// like real hardware; the system still settles (goes idle).
func TestUnconnectedLinkBlocks(t *testing.T) {
	s := network.NewSystem()
	n := s.MustAddTransputer("lonely", cfg())
	load(t, n, `
	ldc 1
	mint
	outword
	ldc 9
	stl 1
	stopp
`)
	rep := s.Run(sim.Millisecond)
	if !rep.Settled {
		t.Fatal("should settle (idle)")
	}
	if n.M.Local(1) == 9 {
		t.Error("process should still be blocked on the unconnected link")
	}
}

// TestDeadlockDiagnostics: a settled system with processes still
// blocked on channels reports them.
func TestDeadlockDiagnostics(t *testing.T) {
	s := network.NewSystem()
	n := s.MustAddTransputer("dead", cfg())
	// Two processes input from each other's channels: classic deadlock.
	load(t, n, `
	mint
	stl 3          -- channel 1
	mint
	stl 4          -- channel 2
	ldc 2
	stl 1
	ldpi cont
	stl 0
	ldc child-after
	ldlp -40
	startp
after:
	ajw -20
	ldlp 1
	ldlp 23        -- wait on channel 1
	ldc 4
	in
	ldlp 20
	endp
child:
	ldlp 1
	ldlp 44        -- wait on channel 2
	ldc 4
	in
	ldlp 40
	endp
cont:
	stopp
`)
	rep := s.Run(sim.Millisecond)
	if !rep.Settled {
		t.Fatalf("deadlocked system should settle (go idle): %+v", rep)
	}
	if len(rep.Blocked) != 1 || rep.Blocked[0] != "dead" {
		t.Errorf("Blocked = %v, want [dead]", rep.Blocked)
	}
	if n.M.WaitingProcesses() != 2 {
		t.Errorf("waiting = %d, want 2", n.M.WaitingProcesses())
	}
}

// TestNoFalseDeadlockReport: a cleanly finishing program reports only
// its final stop.
func TestNoFalseDeadlockReport(t *testing.T) {
	s := network.NewSystem()
	a := s.MustAddTransputer("a", cfg())
	b := s.MustAddTransputer("b", cfg())
	s.MustConnect(a, 0, b, 0)
	load(t, a, "\tldc 1\n\tmint\n\toutword\n\tstopp\n")
	load(t, b, "\tldlp 1\n\tmint\n\tldnlp 4\n\tldc 4\n\tin\n\tstopp\n")
	rep := s.Run(sim.Millisecond)
	if !rep.Settled {
		t.Fatalf("%+v", rep)
	}
	// The final stop process is deliberate, not a communication wait:
	// a clean finish reports no blocked processes.
	if a.M.WaitingProcesses() != 0 || b.M.WaitingProcesses() != 0 {
		t.Errorf("waiting = %d/%d, want 0/0",
			a.M.WaitingProcesses(), b.M.WaitingProcesses())
	}
	if len(rep.Blocked) != 0 {
		t.Errorf("Blocked = %v, want none", rep.Blocked)
	}
}
