package network_test

import (
	"testing"

	"transputer/internal/link"
	"transputer/internal/network"
	"transputer/internal/probe"
	"transputer/internal/sim"
)

// TestExternalCommCounters sends one word across a link and checks the
// external communication counters on both ends, plus the wire-level
// traffic statistics surfaced by the link engine.
func TestExternalCommCounters(t *testing.T) {
	s := network.NewSystem()
	a := s.MustAddTransputer("a", cfg())
	b := s.MustAddTransputer("b", cfg())
	s.MustConnect(a, 0, b, 0)
	load(t, a, "\tldc 7\n\tmint\n\toutword\n\tstopp\n")
	load(t, b, "\tldlp 1\n\tmint\n\tldnlp 4\n\tldc 4\n\tin\n\tstopp\n")
	rep := s.Run(sim.Millisecond)
	if !rep.Settled {
		t.Fatalf("did not settle: %+v", rep)
	}

	sa, sb := a.M.Stats(), b.M.Stats()
	if sa.ExternalOut != 1 || sa.MessagesOut != 1 || sa.BytesOut != 4 {
		t.Errorf("a: out=%d msgs=%d bytes=%d, want 1/1/4",
			sa.ExternalOut, sa.MessagesOut, sa.BytesOut)
	}
	if sb.ExternalIn != 1 || sb.MessagesIn != 1 || sb.BytesIn != 4 {
		t.Errorf("b: in=%d msgs=%d bytes=%d, want 1/1/4",
			sb.ExternalIn, sb.MessagesIn, sb.BytesIn)
	}

	// Wire statistics: a's outgoing line carried 4 data bytes of 11 bit
	// times each; b's outgoing line carried the 4 acknowledges of 2 bit
	// times each.
	wa := a.Engine.WireStats(0)
	if wa.DataBytes != 4 || wa.Acks != 0 {
		t.Errorf("a wire = %+v, want 4 data bytes", wa)
	}
	if want := int64(4 * link.DataBits * link.BitNs); wa.BusyNs != want {
		t.Errorf("a wire busy = %d ns, want %d", wa.BusyNs, want)
	}
	wb := b.Engine.WireStats(0)
	if wb.DataBytes != 0 || wb.Acks != 4 {
		t.Errorf("b wire = %+v, want 4 acks", wb)
	}
	if want := int64(4 * link.AckBits * link.BitNs); wb.BusyNs != want {
		t.Errorf("b wire busy = %d ns, want %d", wb.BusyNs, want)
	}
}

// TestSystemProbeEvents attaches a probe bus to a two-node system and
// checks events arrive from every layer: scheduler, channel/link
// transfer, and wire.
func TestSystemProbeEvents(t *testing.T) {
	s := network.NewSystem()
	a := s.MustAddTransputer("a", cfg())
	b := s.MustAddTransputer("b", cfg())
	s.MustConnect(a, 0, b, 0)
	load(t, a, "\tldc 7\n\tmint\n\toutword\n\tstopp\n")
	load(t, b, "\tldlp 1\n\tmint\n\tldnlp 4\n\tldc 4\n\tin\n\tstopp\n")

	bus := probe.NewBus()
	byNodeKind := map[string]map[probe.Kind]int{}
	bus.Subscribe(func(e probe.Event) {
		if byNodeKind[e.Node] == nil {
			byNodeKind[e.Node] = map[probe.Kind]int{}
		}
		byNodeKind[e.Node][e.Kind]++
	})
	s.AttachProbe(bus)

	if rep := s.Run(sim.Millisecond); !rep.Settled {
		t.Fatalf("did not settle: %+v", rep)
	}
	for _, node := range []string{"a", "b"} {
		kinds := byNodeKind[node]
		if kinds[probe.ProcDispatch] == 0 {
			t.Errorf("%s: no dispatch events", node)
		}
		if kinds[probe.LinkXferStart] == 0 || kinds[probe.LinkXferEnd] == 0 {
			t.Errorf("%s: no link transfer events (%v)", node, kinds)
		}
		if kinds[probe.WirePacket] == 0 {
			t.Errorf("%s: no wire events", node)
		}
	}
	// a's wire carries data packets; b's the acknowledges.
	if byNodeKind["a"][probe.WirePacket] != 4 {
		t.Errorf("a wire packets = %d, want 4 data bytes", byNodeKind["a"][probe.WirePacket])
	}
	if byNodeKind["b"][probe.WirePacket] != 4 {
		t.Errorf("b wire packets = %d, want 4 acks", byNodeKind["b"][probe.WirePacket])
	}
}
