package network

import (
	"strings"
	"testing"

	"transputer/internal/fault"
	"transputer/internal/sim"
)

func TestParseTopology(t *testing.T) {
	src := `
# the workstation of figure 6
transputer app  t424 mem=64K program=app.occ
transputer disk t424 program=disk.occ
transputer gfx  t222 mem=1M
connect app.1 disk.0
connect app.2 gfx.0
host app.0
input app 5 -10
run 100ms
`
	topo, err := ParseTopology(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Transputers) != 3 {
		t.Fatalf("transputers = %d", len(topo.Transputers))
	}
	if topo.Transputers[0].Name != "app" || topo.Transputers[0].MemBytes != 64*1024 ||
		topo.Transputers[0].Program != "app.occ" {
		t.Errorf("app spec = %+v", topo.Transputers[0])
	}
	if topo.Transputers[2].Model != "t222" || topo.Transputers[2].MemBytes != 1024*1024 {
		t.Errorf("gfx spec = %+v", topo.Transputers[2])
	}
	if len(topo.Connections) != 2 {
		t.Fatalf("connections = %d", len(topo.Connections))
	}
	c := topo.Connections[0]
	if c.A != "app" || c.ALink != 1 || c.B != "disk" || c.BLink != 0 {
		t.Errorf("connection = %+v", c)
	}
	if len(topo.Hosts) != 1 || topo.Hosts[0].Node != "app" || topo.Hosts[0].Link != 0 {
		t.Errorf("hosts = %+v", topo.Hosts)
	}
	if got := topo.Inputs["app"]; len(got) != 2 || got[0] != 5 || got[1] != -10 {
		t.Errorf("inputs = %v", got)
	}
	if topo.RunLimit != 100*sim.Millisecond {
		t.Errorf("run limit = %v", topo.RunLimit)
	}
}

func TestParseTopologyErrors(t *testing.T) {
	cases := []string{
		"transputer x",
		"transputer x t999",
		"transputer x t424 mem=abc",
		"transputer x t424 frobnicate=1",
		"connect a.0",
		"connect a.0 b.x",
		"host a",
		"input a",
		"input a xyz",
		"run forever",
		"banana split",
		// hardening: duplicates, double wiring, bad references
		"transputer x t424\ntransputer x t424",
		"transputer x t424\ntransputer y t424\nconnect x.0 y.0\nconnect x.0 y.1",
		"transputer x t424\ntransputer y t424\nconnect x.0 y.0\nhost y.0",
		"transputer x t424\nhost x.9",
		"transputer x t424\nconnect x.0 x.0",
		"connect a.0 b.0", // undeclared nodes
		"transputer x t424\ninput ghost 1",
		// fault-campaign directives
		"seed",
		"seed banana",
		"linkmode",
		"linkmode turbo",
		"linkmode reliable timeout=banana",
		"linkmode reliable retries=0",
		"fault",
		"fault meltdown x.0 rate=0.5",
		"transputer x t424\nfault drop x.0 rate=2",
		"transputer x t424\nfault jitter x.0 rate=0.5",
		"transputer x t424\nfault sever x.0",
		"transputer x t424\nfault halt x.0 at=1ms",
		"transputer x t424\nfault drop ghost.0 rate=0.5",
	}
	for _, src := range cases {
		if _, err := ParseTopology(src); err == nil {
			t.Errorf("ParseTopology(%q) should fail", src)
		}
	}
}

// TestParseTopologyErrorLines: every parse error names the offending
// line.
func TestParseTopologyErrorLines(t *testing.T) {
	src := "transputer x t424\ntransputer y t424\nconnect x.0 y.0\nconnect y.0 x.1\n"
	_, err := ParseTopology(src)
	if err == nil {
		t.Fatal("double-wired end accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "line 4") || !strings.Contains(msg, "line 3") {
		t.Errorf("error %q should name the clashing lines", msg)
	}
	_, err = ParseTopology("transputer x t424\n\ntransputer x t222\n")
	if err == nil || !strings.Contains(err.Error(), "line 3") || !strings.Contains(err.Error(), "line 1") {
		t.Errorf("duplicate-name error %v should name both lines", err)
	}
}

// TestParseFaultCampaign covers the seed, linkmode and fault
// directives.
func TestParseFaultCampaign(t *testing.T) {
	src := `
transputer a t424 program=a.occ
transputer b t424 program=b.occ
connect a.1 b.0
seed 42
linkmode reliable timeout=5us retries=16
fault drop a.1 rate=0.05 pkt=data
fault corrupt a.1 rate=0.01
fault jitter b.0 rate=0.5 max=2us
fault sever a.1 at=500us
fault halt b at=1ms
run 10ms
`
	topo, err := ParseTopology(src)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Seed != 42 {
		t.Errorf("seed = %d", topo.Seed)
	}
	lm := topo.LinkMode
	if !lm.Reliable || lm.Timeout != 5*sim.Microsecond || lm.Retries != 16 {
		t.Errorf("linkmode = %+v", lm)
	}
	if len(topo.Faults) != 5 {
		t.Fatalf("faults = %+v", topo.Faults)
	}
	d := topo.Faults[0]
	if d.Kind != fault.Drop || d.Node != "a" || d.Link != 1 || d.Rate != 0.05 || d.Pkt != fault.DataPacket {
		t.Errorf("drop rule = %+v", d)
	}
	j := topo.Faults[2]
	if j.Kind != fault.Jitter || j.Max != 2*sim.Microsecond {
		t.Errorf("jitter rule = %+v", j)
	}
	sv := topo.Faults[3]
	if sv.Kind != fault.Sever || sv.At != 500*sim.Microsecond {
		t.Errorf("sever rule = %+v", sv)
	}
	h := topo.Faults[4]
	if h.Kind != fault.Halt || h.Node != "b" || h.Link != -1 || h.At != sim.Millisecond {
		t.Errorf("halt rule = %+v", h)
	}
	plan := topo.Plan()
	if plan.Seed != 42 || len(plan.Rules) != 5 {
		t.Errorf("plan = %+v", plan)
	}
}

func TestParseDurations(t *testing.T) {
	cases := map[string]sim.Time{
		"5ms":   5 * sim.Millisecond,
		"10us":  10 * sim.Microsecond,
		"100ns": 100,
		"2s":    2 * sim.Second,
	}
	for s, want := range cases {
		got, err := parseDuration(s)
		if err != nil || got != want {
			t.Errorf("parseDuration(%q) = %v, %v", s, got, err)
		}
	}
}
