package network

import (
	"testing"

	"transputer/internal/sim"
)

func TestParseTopology(t *testing.T) {
	src := `
# the workstation of figure 6
transputer app  t424 mem=64K program=app.occ
transputer disk t424 program=disk.occ
transputer gfx  t222 mem=1M
connect app.1 disk.0
connect app.2 gfx.0
host app.0
input app 5 -10
run 100ms
`
	topo, err := ParseTopology(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Transputers) != 3 {
		t.Fatalf("transputers = %d", len(topo.Transputers))
	}
	if topo.Transputers[0].Name != "app" || topo.Transputers[0].MemBytes != 64*1024 ||
		topo.Transputers[0].Program != "app.occ" {
		t.Errorf("app spec = %+v", topo.Transputers[0])
	}
	if topo.Transputers[2].Model != "t222" || topo.Transputers[2].MemBytes != 1024*1024 {
		t.Errorf("gfx spec = %+v", topo.Transputers[2])
	}
	if len(topo.Connections) != 2 {
		t.Fatalf("connections = %d", len(topo.Connections))
	}
	c := topo.Connections[0]
	if c.A != "app" || c.ALink != 1 || c.B != "disk" || c.BLink != 0 {
		t.Errorf("connection = %+v", c)
	}
	if len(topo.Hosts) != 1 || topo.Hosts[0].Node != "app" || topo.Hosts[0].Link != 0 {
		t.Errorf("hosts = %+v", topo.Hosts)
	}
	if got := topo.Inputs["app"]; len(got) != 2 || got[0] != 5 || got[1] != -10 {
		t.Errorf("inputs = %v", got)
	}
	if topo.RunLimit != 100*sim.Millisecond {
		t.Errorf("run limit = %v", topo.RunLimit)
	}
}

func TestParseTopologyErrors(t *testing.T) {
	cases := []string{
		"transputer x",
		"transputer x t999",
		"transputer x t424 mem=abc",
		"transputer x t424 frobnicate=1",
		"connect a.0",
		"connect a.0 b.x",
		"host a",
		"input a",
		"input a xyz",
		"run forever",
		"banana split",
	}
	for _, src := range cases {
		if _, err := ParseTopology(src); err == nil {
			t.Errorf("ParseTopology(%q) should fail", src)
		}
	}
}

func TestParseDurations(t *testing.T) {
	cases := map[string]sim.Time{
		"5ms":   5 * sim.Millisecond,
		"10us":  10 * sim.Microsecond,
		"100ns": 100,
		"2s":    2 * sim.Second,
	}
	for s, want := range cases {
		got, err := parseDuration(s)
		if err != nil || got != want {
			t.Errorf("parseDuration(%q) = %v, %v", s, got, err)
		}
	}
}
