package network

import (
	"strings"
	"testing"

	"transputer/internal/fault"
	"transputer/internal/sim"
)

func TestParseTopology(t *testing.T) {
	src := `
# the workstation of figure 6
transputer app  t424 mem=64K program=app.occ
transputer disk t424 program=disk.occ
transputer gfx  t222 mem=1M
connect app.1 disk.0
connect app.2 gfx.0
host app.0
input app 5 -10
run 100ms
`
	topo, err := ParseTopology(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Transputers) != 3 {
		t.Fatalf("transputers = %d", len(topo.Transputers))
	}
	if topo.Transputers[0].Name != "app" || topo.Transputers[0].MemBytes != 64*1024 ||
		topo.Transputers[0].Program != "app.occ" {
		t.Errorf("app spec = %+v", topo.Transputers[0])
	}
	if topo.Transputers[2].Model != "t222" || topo.Transputers[2].MemBytes != 1024*1024 {
		t.Errorf("gfx spec = %+v", topo.Transputers[2])
	}
	if len(topo.Connections) != 2 {
		t.Fatalf("connections = %d", len(topo.Connections))
	}
	c := topo.Connections[0]
	if c.A != "app" || c.ALink != 1 || c.B != "disk" || c.BLink != 0 {
		t.Errorf("connection = %+v", c)
	}
	if len(topo.Hosts) != 1 || topo.Hosts[0].Node != "app" || topo.Hosts[0].Link != 0 {
		t.Errorf("hosts = %+v", topo.Hosts)
	}
	if got := topo.Inputs["app"]; len(got) != 2 || got[0] != 5 || got[1] != -10 {
		t.Errorf("inputs = %v", got)
	}
	if topo.RunLimit != 100*sim.Millisecond {
		t.Errorf("run limit = %v", topo.RunLimit)
	}
}

func TestParseTopologyErrors(t *testing.T) {
	cases := []string{
		"transputer x",
		"transputer x t999",
		"transputer x t424 mem=abc",
		"transputer x t424 frobnicate=1",
		"connect a.0",
		"connect a.0 b.x",
		"host a",
		"input a",
		"input a xyz",
		"run forever",
		"banana split",
		// hardening: duplicates, double wiring, bad references
		"transputer x t424\ntransputer x t424",
		"transputer x t424\ntransputer y t424\nconnect x.0 y.0\nconnect x.0 y.1",
		"transputer x t424\ntransputer y t424\nconnect x.0 y.0\nhost y.0",
		"transputer x t424\nhost x.9",
		"transputer x t424\nconnect x.0 x.0",
		"connect a.0 b.0", // undeclared nodes
		"transputer x t424\ninput ghost 1",
		// fault-campaign directives
		"seed",
		"seed banana",
		"linkmode",
		"linkmode turbo",
		"linkmode reliable timeout=banana",
		"linkmode reliable retries=0",
		"fault",
		"fault meltdown x.0 rate=0.5",
		"transputer x t424\nfault drop x.0 rate=2",
		"transputer x t424\nfault jitter x.0 rate=0.5",
		"transputer x t424\nfault sever x.0",
		"transputer x t424\nfault halt x.0 at=1ms",
		"transputer x t424\nfault drop ghost.0 rate=0.5",
	}
	for _, src := range cases {
		if _, err := ParseTopology(src); err == nil {
			t.Errorf("ParseTopology(%q) should fail", src)
		}
	}
}

// TestParseTopologyErrorLines: every parse error names the offending
// line.
func TestParseTopologyErrorLines(t *testing.T) {
	src := "transputer x t424\ntransputer y t424\nconnect x.0 y.0\nconnect y.0 x.1\n"
	_, err := ParseTopology(src)
	if err == nil {
		t.Fatal("double-wired end accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "line 4") || !strings.Contains(msg, "line 3") {
		t.Errorf("error %q should name the clashing lines", msg)
	}
	_, err = ParseTopology("transputer x t424\n\ntransputer x t222\n")
	if err == nil || !strings.Contains(err.Error(), "line 3") || !strings.Contains(err.Error(), "line 1") {
		t.Errorf("duplicate-name error %v should name both lines", err)
	}
}

// TestParseFaultCampaign covers the seed, linkmode and fault
// directives.
func TestParseFaultCampaign(t *testing.T) {
	src := `
transputer a t424 program=a.occ
transputer b t424 program=b.occ
connect a.1 b.0
seed 42
linkmode reliable timeout=5us retries=16
fault drop a.1 rate=0.05 pkt=data
fault corrupt a.1 rate=0.01
fault jitter b.0 rate=0.5 max=2us
fault sever a.1 at=500us
fault halt b at=1ms
run 10ms
`
	topo, err := ParseTopology(src)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Seed != 42 {
		t.Errorf("seed = %d", topo.Seed)
	}
	lm := topo.LinkMode
	if !lm.Reliable || lm.Timeout != 5*sim.Microsecond || lm.Retries != 16 {
		t.Errorf("linkmode = %+v", lm)
	}
	if len(topo.Faults) != 5 {
		t.Fatalf("faults = %+v", topo.Faults)
	}
	d := topo.Faults[0]
	if d.Kind != fault.Drop || d.Node != "a" || d.Link != 1 || d.Rate != 0.05 || d.Pkt != fault.DataPacket {
		t.Errorf("drop rule = %+v", d)
	}
	j := topo.Faults[2]
	if j.Kind != fault.Jitter || j.Max != 2*sim.Microsecond {
		t.Errorf("jitter rule = %+v", j)
	}
	sv := topo.Faults[3]
	if sv.Kind != fault.Sever || sv.At != 500*sim.Microsecond {
		t.Errorf("sever rule = %+v", sv)
	}
	h := topo.Faults[4]
	if h.Kind != fault.Halt || h.Node != "b" || h.Link != -1 || h.At != sim.Millisecond {
		t.Errorf("halt rule = %+v", h)
	}
	plan := topo.Plan()
	if plan.Seed != 42 || len(plan.Rules) != 5 {
		t.Errorf("plan = %+v", plan)
	}
}

func TestParseDurations(t *testing.T) {
	cases := map[string]sim.Time{
		"5ms":   5 * sim.Millisecond,
		"10us":  10 * sim.Microsecond,
		"100ns": 100,
		"2s":    2 * sim.Second,
	}
	for s, want := range cases {
		got, err := parseDuration(s)
		if err != nil || got != want {
			t.Errorf("parseDuration(%q) = %v, %v", s, got, err)
		}
	}
}

// TestParseSelfHealing covers the heartbeat, route and message
// directives of a self-healing topology.
func TestParseSelfHealing(t *testing.T) {
	src := `
transputer a t424
transputer b t424
transputer c t424
connect a.0 b.1
connect b.0 c.1
connect c.0 a.1
linkmode reliable
heartbeat interval=20us timeout=100us
route hop=400us replay=800us ttl=16
message a c at=100us data=hello
fault sever a.0 at=200us
fault halt b at=300us
fault restart b at=900us
run 5ms
`
	topo, err := ParseTopology(src)
	if err != nil {
		t.Fatal(err)
	}
	if !topo.Heartbeat.Set || topo.Heartbeat.Interval != 20*sim.Microsecond ||
		topo.Heartbeat.Timeout != 100*sim.Microsecond {
		t.Errorf("heartbeat = %+v", topo.Heartbeat)
	}
	if !topo.Route.Enabled || topo.Route.Hop != 400*sim.Microsecond ||
		topo.Route.Replay != 800*sim.Microsecond || topo.Route.TTL != 16 {
		t.Errorf("route = %+v", topo.Route)
	}
	if len(topo.Messages) != 1 {
		t.Fatalf("messages = %+v", topo.Messages)
	}
	m := topo.Messages[0]
	if m.From != "a" || m.To != "c" || m.At != 100*sim.Microsecond || m.Data != "hello" {
		t.Errorf("message = %+v", m)
	}
	r := topo.Faults[2]
	if r.Kind != fault.Restart || r.Node != "b" || r.Link != -1 || r.At != 900*sim.Microsecond {
		t.Errorf("restart rule = %+v", r)
	}
}

// TestParseSelfHealingErrors rejects inconsistent self-healing
// directives at parse time.
func TestParseSelfHealingErrors(t *testing.T) {
	cases := []string{
		"heartbeat interval=banana",
		"heartbeat frequency=20us",
		"route ttl=0",
		"route ttl=banana",
		"route speed=11",
		// route without its prerequisites
		"transputer x t424\nroute",
		"transputer x t424\nlinkmode reliable\nroute",
		// messages without routing, or naming ghosts
		"transputer x t424\nmessage x x at=1us data=hi",
		"transputer x t424\ntransputer y t424\nconnect x.0 y.0\n" +
			"linkmode reliable\nheartbeat\nroute\nmessage x ghost at=1us data=hi",
		"message x",
		"message x y",
		"message x y data=hi", // no at=
	}
	for _, src := range cases {
		if _, err := ParseTopology(src); err == nil {
			t.Errorf("ParseTopology(%q) should fail", src)
		}
	}
}

// TestParseVChan covers the vchan directive and its cross-checks.
func TestParseVChan(t *testing.T) {
	base := "transputer a t424\ntransputer b t424\nconnect a.1 b.2\nhost a.0\n"
	topo, err := ParseTopology(base + "vchan a.1 count=8\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.VChans) != 1 {
		t.Fatalf("vchans = %+v", topo.VChans)
	}
	vc := topo.VChans[0]
	if vc.Node != "a" || vc.Link != 1 || vc.Count != 8 {
		t.Errorf("vchan spec = %+v", vc)
	}
	cases := []struct {
		src  string
		want []string // substrings the error must carry
	}{
		{base + "vchan a.1", []string{"line 5", "count=N"}},
		{base + "vchan a.1 width=8", []string{"line 5", "count=N"}},
		{base + "vchan a.1 count=1", []string{"line 5", "bad vchan count"}},
		{base + "vchan a.1 count=33", []string{"line 5", "bad vchan count"}},
		{base + "vchan a.9 count=8", []string{"line 5", "out of range"}},
		{base + "vchan ghost.1 count=8", []string{"line 5", "unknown transputer"}},
		{base + "vchan a.2 count=8", []string{"line 5", "unwired link end a.2"}},
		{base + "vchan a.0 count=8", []string{"line 5", "host link end a.0"}},
		{base + "vchan a.1 count=8\nvchan a.1 count=4",
			[]string{"line 6", "duplicate vchan", "line 5"}},
		{base + "vchan a.1 count=8\nvchan b.2 count=4",
			[]string{"line 6", "same wire", "line 5"}},
		{base + "vchan a.1 count=8\nfault drop a.1 rate=0.5",
			[]string{"line 6", "multiplexed link end a.1", "line 5"}},
		{base + "vchan a.1 count=8\nfault corrupt b.2 rate=0.5",
			[]string{"line 6", "multiplexed link end b.2", "line 5"}},
		{base + "vchan a.1 count=8\nfault halt b at=1ms",
			[]string{"line 6", "multiplexed link", "line 5"}},
	}
	for _, c := range cases {
		_, err := ParseTopology(c.src)
		if err == nil {
			t.Errorf("ParseTopology(%q) should fail", c.src)
			continue
		}
		for _, w := range c.want {
			if !strings.Contains(err.Error(), w) {
				t.Errorf("error %q for %q should mention %q", err, c.src, w)
			}
		}
	}
}

// TestParseDuplicateDirectives: a topology may configure heartbeat and
// route at most once; a silent last-writer-wins overwrite was how a
// campaign ran with the wrong timeout and nobody noticed.
func TestParseDuplicateDirectives(t *testing.T) {
	cases := []struct {
		src  string
		want []string
	}{
		{"heartbeat interval=20us\nheartbeat interval=50us",
			[]string{"line 2", "duplicate heartbeat", "line 1"}},
		{"transputer x t424\nlinkmode reliable\nheartbeat\nroute\nroute ttl=4",
			[]string{"line 5", "duplicate route", "line 4"}},
	}
	for _, c := range cases {
		_, err := ParseTopology(c.src)
		if err == nil {
			t.Errorf("ParseTopology(%q) should fail", c.src)
			continue
		}
		for _, w := range c.want {
			if !strings.Contains(err.Error(), w) {
				t.Errorf("error %q for %q should mention %q", err, c.src, w)
			}
		}
	}
}

// TestParseFaultValidation: the script is cross-checked against the
// wiring when the file is read, and every rejection names its line.
func TestParseFaultValidation(t *testing.T) {
	base := "transputer a t424\ntransputer b t424\nconnect a.0 b.0\n"
	cases := []struct {
		src  string
		want []string // substrings the error must carry
	}{
		{base + "fault sever a.1 at=1ms",
			[]string{"line 4", "unwired link end a.1"}},
		{base + "fault drop a.2 rate=0.5",
			[]string{"line 4", "unwired link end a.2"}},
		{base + "fault sever a.0 at=1ms\nfault sever a.0 at=2ms",
			[]string{"line 5", "duplicate sever", "line 4"}},
		{base + "fault sever a.0 at=1ms\nfault sever b.0 at=2ms",
			[]string{"line 5", "same link", "line 4"}},
		{base + "fault halt a at=1ms\nfault halt a at=2ms",
			[]string{"line 5", "duplicate halt", "line 4"}},
		{base + "fault restart a at=1ms",
			[]string{"line 4", "no matching halt"}},
		{base + "fault halt a at=2ms\nfault restart a at=1ms",
			[]string{"line 5", "does not follow its halt"}},
		{base + "fault halt a at=1ms\nfault restart a at=2ms\nfault restart a at=3ms",
			[]string{"line 6", "duplicate restart", "line 5"}},
	}
	for _, c := range cases {
		_, err := ParseTopology(c.src)
		if err == nil {
			t.Errorf("ParseTopology(%q) should fail", c.src)
			continue
		}
		for _, w := range c.want {
			if !strings.Contains(err.Error(), w) {
				t.Errorf("error %q for %q should mention %q", err, c.src, w)
			}
		}
	}
	// The same campaign against correct wiring is accepted.
	ok := base + "fault sever a.0 at=1ms\nfault halt a at=1ms\nfault restart a at=2ms\n"
	if _, err := ParseTopology(ok); err != nil {
		t.Errorf("valid campaign rejected: %v", err)
	}
}
