package network

import (
	"os"
	"testing"
)

// FuzzParseTopology throws arbitrary text at the topology parser and
// checks its contract: no panic, and a successful parse only ever
// wires declared nodes.
func FuzzParseTopology(f *testing.F) {
	f.Add("transputer a t424\ntransputer b t424\nconnect a.0 b.1\n")
	f.Add("transputer a t424 mem=64K program=p.occ\nhost a.2\nrun 50ms\n")
	f.Add("# comment\n\ntransputer n t424\ninput n 1 2 3\n")
	f.Add("transputer a t424\ntransputer b t424\nconnect a.0 b.0\nvchan a.0 4\nroute on\n")
	f.Add("seed 42\nlinkmode detect\nheartbeat 1ms 5ms\n")
	for _, ex := range []string{
		"../../examples/netdemo/ring.tnet",
		"../../examples/vchan/sieve.tnet",
		"../../examples/faults/healed-ring.tnet",
		"../../examples/faults/severed-ring.tnet",
		"../../examples/faults/restart-grid.tnet",
		"../../examples/faults/lossy-link.tnet",
	} {
		if b, err := os.ReadFile(ex); err == nil {
			f.Add(string(b))
		}
	}
	f.Fuzz(func(t *testing.T, src string) {
		topo, err := ParseTopology(src)
		if err != nil {
			return
		}
		if topo == nil {
			t.Fatalf("ParseTopology(%q) returned neither topology nor error", src)
		}
		declared := make(map[string]bool, len(topo.Transputers))
		for _, tr := range topo.Transputers {
			declared[tr.Name] = true
		}
		for _, c := range topo.Connections {
			if !declared[c.A] || !declared[c.B] {
				t.Fatalf("ParseTopology(%q) accepted a wire between undeclared nodes %q-%q", src, c.A, c.B)
			}
		}
		for _, h := range topo.Hosts {
			if !declared[h.Node] {
				t.Fatalf("ParseTopology(%q) accepted a host on undeclared node %q", src, h.Node)
			}
		}
	})
}
