package network_test

import (
	"fmt"
	"strings"
	"testing"

	"transputer/internal/core"
	"transputer/internal/fault"
	"transputer/internal/network"
	"transputer/internal/probe"
	"transputer/internal/sim"
)

// senderLoop outputs the words n..1 on link 1; receiverLoop reads n
// words from link 0 and sums them into local 3.
func senderLoop(n int) string {
	return fmt.Sprintf(`
	ldc %d
	stl 2
loop:
	ldl 2
	cj done
	ldl 2
	mint
	ldnlp 1        -- link 1 out
	outword
	ldl 2
	adc -1
	stl 2
	j loop
done:
	stopp
`, n)
}

func receiverLoop(n int) string {
	return fmt.Sprintf(`
	ldc 0
	stl 3
	ldc %d
	stl 2
loop:
	ldl 2
	cj done
	ldlp 1
	mint
	ldnlp 4        -- link 0 in
	ldc 4
	in
	ldl 3
	ldl 1
	add
	stl 3
	ldl 2
	adc -1
	stl 2
	j loop
done:
	stopp
`, n)
}

// lossyCampaign runs a 50-word transfer over a lossy wire in reliable
// mode under the given seed, returning the probe event stream and the
// metrics aggregator.
func lossyCampaign(t *testing.T, seed uint64) ([]string, *probe.Metrics) {
	t.Helper()
	s := network.NewSystem()
	bus := probe.NewBus()
	var events []string
	bus.Subscribe(func(e probe.Event) { events = append(events, fmt.Sprintf("%+v", e)) })
	met := probe.NewMetrics(bus)
	s.AttachProbe(bus)
	a := s.MustAddTransputer("a", cfg())
	b := s.MustAddTransputer("b", cfg())
	s.MustConnect(a, 1, b, 0)
	s.SetLinkMode(network.LinkMode{Reliable: true, Timeout: 2 * sim.Microsecond, Retries: 64})
	load(t, a, senderLoop(50))
	load(t, b, receiverLoop(50))
	err := s.ApplyFaults(fault.Plan{Seed: seed, Rules: []fault.Rule{
		{Kind: fault.Drop, Node: "a", Link: 1, Rate: 0.1},
		{Kind: fault.Corrupt, Node: "a", Link: 1, Rate: 0.1},
		{Kind: fault.Jitter, Node: "b", Link: 0, Rate: 0.3, Max: 500 * sim.Nanosecond},
	}})
	if err != nil {
		t.Fatal(err)
	}
	rep := s.Run(100 * sim.Millisecond)
	if !rep.Settled {
		t.Fatalf("lossy campaign did not settle: %+v", rep)
	}
	// Byte-exact delivery despite drops and corruption: the sum of
	// 50..1 survives only if every word arrived intact, exactly once.
	if got := b.M.Local(3); got != 1275 {
		t.Fatalf("sum = %d, want 1275 (message stream not byte-exact)", got)
	}
	met.Finish(rep.Time)
	return events, met
}

// TestLossyCampaignDeterminism: the same topology, program and seed
// produce an identical probe event stream, run after run; a different
// seed produces a different one.
func TestLossyCampaignDeterminism(t *testing.T) {
	e1, m1 := lossyCampaign(t, 42)
	e2, _ := lossyCampaign(t, 42)
	if len(e1) != len(e2) {
		t.Fatalf("event counts differ between identical runs: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("event %d differs between identical runs:\n  %s\n  %s", i, e1[i], e2[i])
		}
	}
	if m1.Retransmits("a", 1) == 0 {
		t.Error("lossy run recorded no retransmits")
	}
	drops, corrupts, _ := m1.FaultCounts("a", 1)
	if drops == 0 || corrupts == 0 {
		t.Errorf("fault counters: %d drops, %d corrupts, want both > 0", drops, corrupts)
	}
	e3, _ := lossyCampaign(t, 7)
	same := len(e3) == len(e1)
	if same {
		for i := range e1 {
			if e1[i] != e3[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical event streams")
	}
}

// jitterCampaign runs a 30-word reliable-mode transfer with every
// acknowledge jittered by up to max, checks the delivered sum is exact
// (no word lost, none duplicated), and returns the retransmit count.
// The data wire is left clean: a delayed data packet also delays its
// own transmit-end, so only acknowledge jitter races the sender's
// retransmit timer.
func jitterCampaign(t *testing.T, max sim.Time) uint64 {
	t.Helper()
	s := network.NewSystem()
	bus := probe.NewBus()
	met := probe.NewMetrics(bus)
	s.AttachProbe(bus)
	a := s.MustAddTransputer("a", cfg())
	b := s.MustAddTransputer("b", cfg())
	s.MustConnect(a, 1, b, 0)
	s.SetLinkMode(network.LinkMode{Reliable: true, Timeout: 10 * sim.Microsecond, Retries: 64})
	load(t, a, senderLoop(30))
	load(t, b, receiverLoop(30))
	err := s.ApplyFaults(fault.Plan{Seed: 99, Rules: []fault.Rule{
		{Kind: fault.Jitter, Node: "b", Link: 0, Rate: 1, Max: max},
	}})
	if err != nil {
		t.Fatal(err)
	}
	rep := s.Run(100 * sim.Millisecond)
	if !rep.Settled {
		t.Fatalf("jittered campaign did not settle: %+v", rep)
	}
	if got := b.M.Local(3); got != 465 {
		t.Fatalf("sum = %d, want 465 (jitter duplicated or lost a word)", got)
	}
	met.Finish(rep.Time)
	return met.Retransmits("a", 1)
}

// TestJitterRetransmitRace: acknowledge jitter bounded just below the
// retransmit timeout must never fire the timer; jitter reaching just
// beyond it must — and the retransmissions the late acknowledges cross
// with must be suppressed by the alternating sequence bit, not
// delivered twice.  (Far larger jitter is a different regime: every
// retransmission draws a re-acknowledge that queues behind the delayed
// ones, the return wire falls permanently behind and the sender
// rightly declares the link down.)
func TestJitterRetransmitRace(t *testing.T) {
	if r := jitterCampaign(t, 8*sim.Microsecond); r != 0 {
		t.Errorf("jitter below the timeout caused %d retransmits", r)
	}
	if r := jitterCampaign(t, 12*sim.Microsecond); r == 0 {
		t.Error("jitter beyond the timeout caused no retransmits")
	}
}

// TestSeverWatchdog: a link severed mid-stream strands the sender and
// receiver; the settled system's watchdog names both processes, their
// block kinds and the severed link.
func TestSeverWatchdog(t *testing.T) {
	s := network.NewSystem()
	bus := probe.NewBus()
	var deadlocks []probe.Event
	bus.Subscribe(func(e probe.Event) {
		if e.Kind == probe.Deadlock {
			deadlocks = append(deadlocks, e)
		}
	})
	s.AttachProbe(bus)
	a := s.MustAddTransputer("a", cfg())
	b := s.MustAddTransputer("b", cfg())
	s.MustConnect(a, 1, b, 0)
	load(t, a, senderLoop(10000))
	load(t, b, receiverLoop(10000))
	err := s.ApplyFaults(fault.Plan{Rules: []fault.Rule{
		{Kind: fault.Sever, Node: "a", Link: 1, At: 50 * sim.Microsecond},
	}})
	if err != nil {
		t.Fatal(err)
	}
	rep := s.Run(10 * sim.Millisecond)
	if !rep.Settled {
		t.Fatalf("severed system should settle: %+v", rep)
	}
	wd := s.Watchdog()
	if wd == nil {
		t.Fatal("watchdog found nothing after sever")
	}
	if len(wd.Procs) != 2 {
		t.Fatalf("watchdog procs = %+v, want sender and receiver", wd.Procs)
	}
	kinds := map[string]core.BlockKind{}
	for _, p := range wd.Procs {
		kinds[p.Node] = p.Kind
		if p.Link != -1 && p.Link != 1 && p.Link != 0 {
			t.Errorf("proc on %s blames link %d", p.Node, p.Link)
		}
		if p.Addr == 0 {
			t.Errorf("proc on %s has no channel address", p.Node)
		}
	}
	if kinds["a"] != core.BlockLinkOut || kinds["b"] != core.BlockLinkIn {
		t.Errorf("block kinds = %v, want a:link-out b:link-in", kinds)
	}
	if len(deadlocks) != 2 {
		t.Errorf("probe bus saw %d deadlock events, want 2", len(deadlocks))
	}
	if !strings.Contains(wd.String(), "a:") || !strings.Contains(wd.String(), "b:") {
		t.Errorf("report does not name both nodes:\n%s", wd)
	}
}

// TestHaltFault: a halted node is reported as halted, not deadlocked,
// and its stranded peer shows up in the watchdog.
func TestHaltFault(t *testing.T) {
	s := network.NewSystem()
	a := s.MustAddTransputer("a", cfg())
	b := s.MustAddTransputer("b", cfg())
	s.MustConnect(a, 1, b, 0)
	load(t, a, senderLoop(10000))
	load(t, b, receiverLoop(10000))
	err := s.ApplyFaults(fault.Plan{Rules: []fault.Rule{
		{Kind: fault.Halt, Node: "b", Link: -1, At: 50 * sim.Microsecond},
	}})
	if err != nil {
		t.Fatal(err)
	}
	rep := s.Run(10 * sim.Millisecond)
	if !rep.Settled {
		t.Fatalf("system with halted node should settle: %+v", rep)
	}
	if len(rep.Halted) != 1 || rep.Halted[0] != "b" {
		t.Fatalf("Halted = %v, want [b]", rep.Halted)
	}
	if err := b.M.Fault(); err == nil || !strings.Contains(err.Error(), "fault injection") {
		t.Errorf("halted node's fault = %v", err)
	}
	wd := s.Watchdog()
	if wd == nil {
		t.Fatal("watchdog missed the stranded sender")
	}
	if len(wd.Procs) != 1 || wd.Procs[0].Node != "a" || wd.Procs[0].Kind != core.BlockLinkOut {
		t.Errorf("watchdog procs = %+v, want a blocked on link output", wd.Procs)
	}
}

// TestUnwiredFaultTarget: a plan naming an unwired link end is an
// error, not a silent no-op.
func TestUnwiredFaultTarget(t *testing.T) {
	s := network.NewSystem()
	s.MustAddTransputer("a", cfg())
	err := s.ApplyFaults(fault.Plan{Rules: []fault.Rule{
		{Kind: fault.Drop, Node: "a", Link: 2, Rate: 0.5},
	}})
	if err == nil {
		t.Error("fault on unwired link should be rejected")
	}
}

// TestHostStallMidMessage: a program that stops after sending half a
// command word leaves the host mid-message; that surfaces as a
// structured stall, not a silent block.
func TestHostStallMidMessage(t *testing.T) {
	s := network.NewSystem()
	n := s.MustAddTransputer("app", cfg())
	host, err := s.AttachHost(n, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	load(t, n, `
	ldlp 1
	mint
	ldc 2
	out            -- two bytes of a four-byte command word
	stopp
`)
	rep := s.Run(sim.Millisecond)
	if !rep.Settled {
		t.Fatalf("did not settle: %+v", rep)
	}
	st := host.Stall()
	if st == nil {
		t.Fatal("mid-message EOF not detected")
	}
	if st.Node != "app" || st.Link != 0 || st.Got != 2 || st.Want != 4 || st.Out {
		t.Errorf("stall = %+v", st)
	}
	wd := s.Watchdog()
	if wd == nil || len(wd.HostStalls) != 1 {
		t.Fatalf("watchdog should surface the host stall: %+v", wd)
	}
	if !strings.Contains(st.Error(), "2 of 4 bytes") {
		t.Errorf("stall error = %q", st.Error())
	}
}
