// Package network builds systems of transputers: "a system is
// constructed from a collection of transputers which operate
// concurrently and communicate through the standard links" (paper,
// 2.1).  It wires machines together with link engines, attaches host
// devices, and drives everything from one deterministic event kernel.
package network

import (
	"fmt"
	"io"

	"transputer/internal/core"
	"transputer/internal/link"
	"transputer/internal/probe"
	"transputer/internal/sim"
)

// Node is one transputer in a system.
type Node struct {
	Name   string
	M      *core.Machine
	Engine *link.Engine
	runner *core.Runner
	wired  [core.NumLinks]bool
}

// System is a collection of transputers and host devices sharing a
// simulation kernel.
type System struct {
	Kernel *sim.Kernel
	nodes  []*Node
	byName map[string]*Node
	hosts  []*Host
	bus    *probe.Bus
	// linkMode is applied to every engine and host end, present and
	// future (see SetLinkMode).
	linkMode LinkMode
}

// NewSystem returns an empty system.
func NewSystem() *System {
	return &System{Kernel: sim.NewKernel(), byName: make(map[string]*Node)}
}

// AddTransputer creates a node.  The configuration's Name is replaced
// by the node name.
func (s *System) AddTransputer(name string, cfg core.Config) (*Node, error) {
	if _, dup := s.byName[name]; dup {
		return nil, fmt.Errorf("network: duplicate transputer name %q", name)
	}
	cfg.Name = name
	m, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	n := &Node{Name: name, M: m}
	n.runner = core.NewRunner(s.Kernel, m)
	n.Engine = link.NewEngine(s.Kernel, m)
	m.Attach(kernelClock{s.Kernel}, n.Engine)
	if s.bus != nil {
		m.AttachProbe(s.bus)
		n.Engine.AttachProbe(s.bus)
	}
	if s.linkMode.Reliable {
		n.Engine.SetReliable(true, s.linkMode.Timeout, s.linkMode.Retries)
	}
	s.nodes = append(s.nodes, n)
	s.byName[name] = n
	return n, nil
}

// AttachProbe connects every machine, link engine and host in the
// system — present and future — to a probe bus.  With no bus attached
// (the default) the instrumented code paths reduce to one nil check.
func (s *System) AttachProbe(b *probe.Bus) {
	s.bus = b
	for _, n := range s.nodes {
		n.M.AttachProbe(b)
		n.Engine.AttachProbe(b)
	}
	for _, h := range s.hosts {
		h.bus = b
	}
}

// kernelClock adapts the kernel to core.Clock.
type kernelClock struct{ k *sim.Kernel }

func (c kernelClock) Now() sim.Time                        { return c.k.Now() }
func (c kernelClock) At(t sim.Time, fn func()) sim.EventID { return c.k.Schedule(t, fn) }
func (c kernelClock) Cancel(id sim.EventID)                { c.k.Cancel(id) }

// MustAddTransputer is AddTransputer for known-good configurations.
func (s *System) MustAddTransputer(name string, cfg core.Config) *Node {
	n, err := s.AddTransputer(name, cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// Node returns a node by name.
func (s *System) Node(name string) (*Node, bool) {
	n, ok := s.byName[name]
	return n, ok
}

// Nodes returns all nodes in creation order.
func (s *System) Nodes() []*Node { return s.nodes }

// Connect wires link la of node a to link lb of node b.
func (s *System) Connect(a *Node, la int, b *Node, lb int) error {
	if la < 0 || la >= core.NumLinks || lb < 0 || lb >= core.NumLinks {
		return fmt.Errorf("network: link index out of range (%d, %d)", la, lb)
	}
	if a.wired[la] {
		return fmt.Errorf("network: %s link %d already connected", a.Name, la)
	}
	if b.wired[lb] {
		return fmt.Errorf("network: %s link %d already connected", b.Name, lb)
	}
	if a == b && la == lb {
		return fmt.Errorf("network: cannot connect a link to itself")
	}
	link.Connect(a.Engine, la, b.Engine, lb)
	a.wired[la] = true
	b.wired[lb] = true
	return nil
}

// MustConnect is Connect that panics on bad topology.
func (s *System) MustConnect(a *Node, la int, b *Node, lb int) {
	if err := s.Connect(a, la, b, lb); err != nil {
		panic(err)
	}
}

// AttachHost wires a host device to link l of the node, writing
// program output to w (which may be nil).
func (s *System) AttachHost(n *Node, l int, w io.Writer) (*Host, error) {
	if l < 0 || l >= core.NumLinks {
		return nil, fmt.Errorf("network: link index %d out of range", l)
	}
	if n.wired[l] {
		return nil, fmt.Errorf("network: %s link %d already connected", n.Name, l)
	}
	h := newHost(s.Kernel, n, l, w)
	h.bus = s.bus
	if s.linkMode.Reliable {
		h.end.SetReliable(true, s.linkMode.Timeout, s.linkMode.Retries)
	}
	n.wired[l] = true
	s.hosts = append(s.hosts, h)
	return h, nil
}

// Load places a program image on the node.
func (n *Node) Load(img core.Image) error { return n.M.Load(img) }

// Report describes the outcome of a run.
type Report struct {
	Time    sim.Time
	Settled bool // event queue drained before the limit
	// Running lists nodes that still had an executing process when the
	// run stopped (only possible when !Settled).
	Running []string
	// Halted lists nodes stopped by faults or halt-on-error.
	Halted []string
	// Blocked lists nodes left idle with processes still waiting on
	// channels, timers or events — in a settled system, the signature
	// of deadlock (or of intentionally stopped processes).
	Blocked []string
}

// Run starts every node and drives the kernel until it drains or the
// limit passes (limit 0 means run to quiescence).  A settled system
// with processes still blocked on channels is deadlocked, which the
// caller can detect from its own completion signal (e.g. the host exit
// command).
func (s *System) Run(limit sim.Time) Report {
	for _, n := range s.nodes {
		n.runner.Start()
	}
	var rep Report
	if limit > 0 {
		rep.Settled = s.Kernel.RunUntil(limit)
	} else {
		s.Kernel.Run()
		rep.Settled = true
	}
	rep.Time = s.Kernel.Now()
	for _, n := range s.nodes {
		switch {
		case n.M.Halted():
			rep.Halted = append(rep.Halted, n.Name)
		case !n.M.Idle():
			rep.Running = append(rep.Running, n.Name)
		case n.M.WaitingProcesses() > 0:
			rep.Blocked = append(rep.Blocked, n.Name)
		}
	}
	return rep
}

// TotalStats sums the execution counters across every node.
func (s *System) TotalStats() core.Stats {
	var total core.Stats
	for _, n := range s.nodes {
		st := n.M.Stats()
		total.Instructions += st.Instructions
		total.InstructionBytes += st.InstructionBytes
		total.SingleByte += st.SingleByte
		total.Cycles += st.Cycles
		total.Enqueues += st.Enqueues
		total.Deschedules += st.Deschedules
		total.Preemptions += st.Preemptions
		total.Timeslices += st.Timeslices
		total.MessagesIn += st.MessagesIn
		total.MessagesOut += st.MessagesOut
		total.BytesIn += st.BytesIn
		total.BytesOut += st.BytesOut
		total.ExternalIn += st.ExternalIn
		total.ExternalOut += st.ExternalOut
		total.CodeBytes += st.CodeBytes
	}
	return total
}

// Continue resumes a previously run system for another bounded slice.
func (s *System) Continue(until sim.Time) Report {
	var rep Report
	rep.Settled = s.Kernel.RunUntil(until)
	rep.Time = s.Kernel.Now()
	return rep
}
