// Package network builds systems of transputers: "a system is
// constructed from a collection of transputers which operate
// concurrently and communicate through the standard links" (paper,
// 2.1).  It wires machines together with link engines and host
// devices, and drives everything from a sharded deterministic
// simulation engine: one event-queue shard per transputer, advanced in
// conservative time windows by a coordinator (see internal/sim).  The
// result is bit-for-bit identical for any worker count.
package network

import (
	"fmt"
	"io"
	"sync"

	"transputer/internal/core"
	"transputer/internal/link"
	"transputer/internal/probe"
	"transputer/internal/sim"
)

// Lookahead is the conservative cross-shard latency: the shortest
// packet a link can carry is an acknowledge (2 bit times at 100 ns),
// so nothing one transputer does can affect another in less than
// 200 ns.  It doubles as the propagation delay of cross-shard wires,
// keeping the paper's streaming behaviour: an early acknowledge still
// crosses back (200 ns out + 200 ns back + 200 ns ack frame = 600 ns)
// well inside the 1100 ns data frame, so transmission stays
// continuous.
const Lookahead = sim.Time(link.AckBits * link.BitNs)

// Node is one transputer in a system: a machine, its link engine, its
// scheduling port (on a private shard, or on a shard shared with fused
// neighbours), and a probe collector.
type Node struct {
	Name   string
	M      *core.Machine
	Engine *link.Engine
	runner *core.Runner
	port   *sim.Port
	col    *collector
	wired  [core.NumLinks]bool
	// peers and peerLink record what each wired link connects to: the
	// node at the other end and its link index (peers[l] is nil for
	// host links).  The restart machinery and the routing layer both
	// need the topology back out of the wiring.
	peers    [core.NumLinks]*Node
	peerLink [core.NumLinks]int
	// severs maps each cross-shard link to the shared per-connection
	// sever marker (nil for host links and same-shard wiring).
	severs [core.NumLinks]*severMark
}

// severMark is shared by the two ends of one cross-shard connection so
// that a sever — whichever end's fault schedule triggers it, or both —
// retires the pair from the coordinator's wiring matrix exactly once.
type severMark struct {
	a, b int // shard IDs of the two ends
	done bool
	// keep pins the pair in the wiring matrix even when severed: a
	// scheduled Restart will restore this link, and re-adding a retired
	// matrix edge later would be unsound (a shard may already have run
	// past the instant a restored wire would deliver into).  Keeping
	// the edge merely keeps windows conservative.
	keep bool
}

// Clock returns the node's scheduling port, for code that needs to
// plant events in this node's timeline — the profiler's sampling
// ticks, fault schedules, experiment harnesses.  The port identifies
// the node even when several fused nodes share one shard.
func (n *Node) Clock() *sim.Port { return n.port }

// collector buffers one node's probe events during a window; the
// coordinator's barrier callback merges all buffers in (time, node)
// order and republishes them on the system bus, so observers see one
// deterministic stream regardless of worker count.
type collector struct {
	bus  *probe.Bus // private per-node bus the machine and engine emit into
	buf  []probe.Event
	next int // merge cursor into buf
}

// System is a collection of transputers and host devices sharing a
// sharded simulation coordinator.
type System struct {
	coord  *sim.Coordinator
	nodes  []*Node
	byName map[string]*Node
	hosts  []*Host
	bus    *probe.Bus
	// linkMode is applied to every engine and host end, present and
	// future (see SetLinkMode).
	linkMode LinkMode
	// blockCacheOff is applied to every machine, present and future
	// (see SetBlockCache).
	blockCacheOff bool
	// severMu guards severMark.done; sever callbacks run on shard
	// goroutines, and both ends of a connection may fire in the same
	// window.
	severMu sync.Mutex
	// hb is the system-wide heartbeat configuration, applied to every
	// engine present and future; monitors start when Run does.
	hb struct {
		interval sim.Time
		timeout  sim.Time
		set      bool
	}
	// downSubs and upSubs hear node liveness transitions driven by the
	// fault schedule (halt and restart rules).  Callbacks run on the
	// affected node's shard; subscribe before Run.
	downSubs []func(*Node)
	upSubs   []func(*Node)
	// placement maps node names to fusion groups (see SetPlacement);
	// members of one group share a shard.  Nodes not named get private
	// shards, the default.
	placement map[string]*fuseGroup
}

// fuseGroup is one fused shard-to-be: its shard is created when the
// first member node is added.
type fuseGroup struct {
	shard *sim.Shard
}

// NewSystem returns an empty system.
func NewSystem() *System {
	s := &System{coord: sim.NewCoordinator(Lookahead), byName: make(map[string]*Node)}
	s.coord.OnFlush(s.flushProbes)
	return s
}

// SetWorkers sets how many OS threads execute shards inside each
// simulation window.  Every value produces identical results; 1 (the
// default) is fully sequential.
func (s *System) SetWorkers(n int) { s.coord.SetWorkers(n) }

// Workers reports the configured worker count.
func (s *System) Workers() int { return s.coord.Workers() }

// SetBlockCache enables or disables the predecoded block cache on
// every machine in the system, present and future.  Purely a
// simulator-performance switch: traces, statistics and cycle
// accounting are identical either way.
func (s *System) SetBlockCache(on bool) {
	s.blockCacheOff = !on
	for _, n := range s.nodes {
		n.M.SetBlockCache(on)
	}
}

// Now returns the current simulated time.
func (s *System) Now() sim.Time { return s.coord.Now() }

// EngineStats reports windowed-engine diagnostics (window counts,
// barrier mailbox vs fused deliveries, barrier wait).  These describe
// how the simulator ran, not what the simulated system did: they vary
// with partition and workers, unlike every observable output.
func (s *System) EngineStats() sim.EngineStats { return s.coord.EngineStats() }

// SetPlacement declares fusion groups before nodes are added: the
// members of each group share one event-queue shard, so their mutual
// link traffic is delivered as ordinary intra-kernel events with no
// coordinator barrier in between.  Results are byte-identical at any
// placement; only simulator performance changes.  Each group must have
// at least two members, no name may appear twice, and every named node
// must be added after this call.
func (s *System) SetPlacement(groups [][]string) error {
	for _, g := range groups {
		if len(g) < 2 {
			return fmt.Errorf("network: fusion group needs at least 2 members, got %v", g)
		}
		for _, name := range g {
			if _, dup := s.byName[name]; dup {
				return fmt.Errorf("network: node %q already added before placement", name)
			}
		}
	}
	if s.placement == nil {
		s.placement = make(map[string]*fuseGroup)
	}
	for _, g := range groups {
		fg := &fuseGroup{}
		for _, name := range g {
			if _, dup := s.placement[name]; dup {
				return fmt.Errorf("network: node %q named in two fusion groups", name)
			}
			s.placement[name] = fg
		}
	}
	return nil
}

// AddTransputer creates a node on its own shard.  The configuration's
// Name is replaced by the node name.
func (s *System) AddTransputer(name string, cfg core.Config) (*Node, error) {
	if _, dup := s.byName[name]; dup {
		return nil, fmt.Errorf("network: duplicate transputer name %q", name)
	}
	cfg.Name = name
	m, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	n := &Node{Name: name, M: m}
	// Placement decides the node's shard; its port rank is the node
	// creation ordinal either way (every node allocates exactly one
	// port, in AddTransputer order), so event identities and delivery
	// keys — and with them all observable output — are independent of
	// the partition.
	if g, ok := s.placement[name]; ok && g.shard != nil {
		n.port = g.shard.NewPort()
	} else {
		sh := s.coord.NewShard()
		n.port = sh.Port()
		if ok {
			g.shard = sh
		}
	}
	n.runner = core.NewRunner(n.port, m)
	n.Engine = link.NewEngine(n.port, m)
	n.Engine.OnSever(func(l int) { s.linkSevered(n, l) })
	m.Attach(portClock{n.port}, n.Engine)
	m.SetFlowOrigin(uint64(len(s.nodes)) + 1)
	if s.bus != nil {
		s.attachCollector(n)
	}
	if s.linkMode.Reliable {
		n.Engine.SetReliable(true, s.linkMode.Timeout, s.linkMode.Retries)
	}
	if s.blockCacheOff {
		m.SetBlockCache(false)
	}
	if s.hb.set {
		n.Engine.SetHeartbeat(s.hb.interval, s.hb.timeout)
	}
	s.nodes = append(s.nodes, n)
	s.byName[name] = n
	return n, nil
}

// AttachProbe connects every machine, link engine and host in the
// system — present and future — to a probe bus.  Each node emits into
// a private per-shard buffer; events reach the given bus merged in
// (time, node) order at window barriers.  With no bus attached (the
// default) the instrumented code paths reduce to one nil check.
func (s *System) AttachProbe(b *probe.Bus) {
	s.bus = b
	for _, n := range s.nodes {
		s.attachCollector(n)
	}
}

// attachCollector gives the node a private probe bus feeding its
// window buffer, and rewires any host on the node to it.
func (s *System) attachCollector(n *Node) {
	if n.col != nil {
		return
	}
	col := &collector{bus: probe.NewBus()}
	col.bus.Subscribe(func(ev probe.Event) { col.buf = append(col.buf, ev) })
	n.col = col
	n.M.AttachProbe(col.bus)
	n.Engine.AttachProbe(col.bus)
	for _, h := range s.hosts {
		if h.node == n {
			h.bus = col.bus
		}
	}
}

// flushProbes is the coordinator's barrier callback: it merges every
// node's buffered events with time below upTo (everything, on the
// final flush) and publishes them to the system bus.  Ties are broken
// by node creation order, a rule independent of execution
// interleaving.
func (s *System) flushProbes(upTo sim.Time, final bool) {
	if s.bus == nil {
		return
	}
	for {
		var best *collector
		for _, n := range s.nodes {
			c := n.col
			if c == nil || c.next >= len(c.buf) {
				continue
			}
			ev := c.buf[c.next]
			if !final && ev.Time >= upTo {
				continue
			}
			if best == nil || ev.Time < best.buf[best.next].Time {
				best = c
			}
		}
		if best == nil {
			break
		}
		s.bus.Publish(best.buf[best.next])
		best.next++
	}
	for _, n := range s.nodes {
		if c := n.col; c != nil && c.next == len(c.buf) {
			c.buf = c.buf[:0]
			c.next = 0
		}
	}
}

// portClock adapts a port to core.Clock.
type portClock struct{ p *sim.Port }

func (c portClock) Now() sim.Time                        { return c.p.Now() }
func (c portClock) At(t sim.Time, fn func()) sim.EventID { return c.p.Schedule(t, fn) }
func (c portClock) Cancel(id sim.EventID)                { c.p.Cancel(id) }

// MustAddTransputer is AddTransputer for known-good configurations.
func (s *System) MustAddTransputer(name string, cfg core.Config) *Node {
	n, err := s.AddTransputer(name, cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// Node returns a node by name.
func (s *System) Node(name string) (*Node, bool) {
	n, ok := s.byName[name]
	return n, ok
}

// Nodes returns all nodes in creation order.
func (s *System) Nodes() []*Node { return s.nodes }

// Connect wires link la of node a to link lb of node b.
func (s *System) Connect(a *Node, la int, b *Node, lb int) error {
	if la < 0 || la >= core.NumLinks || lb < 0 || lb >= core.NumLinks {
		return fmt.Errorf("network: link index out of range (%d, %d)", la, lb)
	}
	if a.wired[la] {
		return fmt.Errorf("network: %s link %d already connected", a.Name, la)
	}
	if b.wired[lb] {
		return fmt.Errorf("network: %s link %d already connected", b.Name, lb)
	}
	if a == b && la == lb {
		return fmt.Errorf("network: cannot connect a link to itself")
	}
	link.Connect(a.Engine, la, b.Engine, lb)
	a.wired[la] = true
	b.wired[lb] = true
	a.peers[la], a.peerLink[la] = b, lb
	b.peers[lb], b.peerLink[lb] = a, la
	if as, bs := a.port.Shard(), b.port.Shard(); as != bs {
		// Register the pair in the coordinator's wiring matrix: window
		// horizons then follow the actual topology (shortest influence
		// paths) instead of assuming every shard can reach every other
		// in one Lookahead.  A connection between fused nodes (same
		// shard) never reaches the matrix: its traffic is intra-kernel
		// and bounds no window.
		s.coord.Wire(as.ID(), bs.ID(), Lookahead)
		s.coord.Wire(bs.ID(), as.ID(), Lookahead)
		mark := &severMark{a: as.ID(), b: bs.ID()}
		a.severs[la] = mark
		b.severs[lb] = mark
	}
	return nil
}

// linkSevered retires a severed cross-shard connection from the
// coordinator's wiring matrix.  The cut takes effect at now+Lookahead:
// the far end's wire dies exactly one propagation delay after the
// near end's, so nothing sent after that instant can cross in either
// direction, and the coordinator defers the actual matrix update until
// the whole system has executed past the cut.
func (s *System) linkSevered(n *Node, l int) {
	mark := n.severs[l]
	if mark == nil || mark.keep {
		return
	}
	s.severMu.Lock()
	done := mark.done
	mark.done = true
	s.severMu.Unlock()
	if done {
		return
	}
	cut := n.port.Now() + Lookahead
	s.coord.Unwire(mark.a, mark.b, cut)
	s.coord.Unwire(mark.b, mark.a, cut)
}

// Peer reports what link l of the node is wired to: the node at the
// other end and its link index.  ok is false for unwired and
// host-wired links.
func (n *Node) Peer(l int) (peer *Node, peerLink int, ok bool) {
	if l < 0 || l >= core.NumLinks || n.peers[l] == nil {
		return nil, 0, false
	}
	return n.peers[l], n.peerLink[l], true
}

// Publish emits a probe event through the node's collector, stamped
// with the node's name and current shard time.  For publishers outside
// the machine and engine — the routing layer — running on the node's
// shard.  The cycle counter is deliberately left unstamped: such
// publishers run asynchronously to the CPU, and its cycle count at
// this instant depends on simulator batching, not architecture.
//
//tvet:ignore probeguard col == nil is the no-probe fast path; a collector always carries a bus
func (n *Node) Publish(ev probe.Event) {
	if n.col == nil {
		return
	}
	ev.Time = n.port.Now()
	ev.Node = n.Name
	n.col.bus.Publish(ev)
}

// SetHeartbeat configures link liveness monitoring on every node,
// present and future (zero values select the defaults); the monitors
// start when Run does.  See link.SetHeartbeat.
func (s *System) SetHeartbeat(interval, timeout sim.Time) {
	s.hb.interval, s.hb.timeout, s.hb.set = interval, timeout, true
	for _, n := range s.nodes {
		n.Engine.SetHeartbeat(interval, timeout)
	}
}

// HeartbeatSet reports whether system-wide liveness monitoring is
// configured.
func (s *System) HeartbeatSet() bool { return s.hb.set }

// LinkMode reports the system-wide link protocol configuration.
func (s *System) LinkMode() LinkMode { return s.linkMode }

// StopHeartbeats cancels every node's liveness monitor so a run can
// quiesce; call between Run and a final Continue.
func (s *System) StopHeartbeats() {
	for _, n := range s.nodes {
		n.Engine.StopHeartbeat()
	}
}

// OnNodeDown registers a callback for nodes stopped by a halt rule.
// It runs on the affected node's shard, at the instant of the halt.
func (s *System) OnNodeDown(fn func(*Node)) { s.downSubs = append(s.downSubs, fn) }

// OnNodeUp registers a callback for nodes revived by a restart rule.
// It runs on the affected node's shard, after the links are restored
// but before their frozen transfers are recovered and the processor is
// released — so a routing layer can reset the restored links to a
// fresh stream before any pre-crash byte is retransmitted.
func (s *System) OnNodeUp(fn func(*Node)) { s.upSubs = append(s.upSubs, fn) }

func (s *System) notifyDown(n *Node) {
	for _, fn := range s.downSubs {
		fn(n)
	}
}

func (s *System) notifyUp(n *Node) {
	for _, fn := range s.upSubs {
		fn(n)
	}
}

// EnableVChans multiplexes count virtual channels over the physical
// wire at link l of the node.  Both ends of the connection get a mux
// (the framing is symmetric, so naming either end is equivalent), and
// both machines get the convention channel words mapped so occam
// programs reach the logical channels through the LINKnVCmOUT/IN
// addresses (see core.MapVChan).  The link must already be connected
// to another transputer; host links cannot be multiplexed.
func (s *System) EnableVChans(n *Node, l, count int) error {
	peer, pl, ok := n.Peer(l)
	if !ok {
		return fmt.Errorf("network: %s link %d is not connected to a transputer", n.Name, l)
	}
	n.Engine.EnableVChans(l, count)
	peer.Engine.EnableVChans(pl, count)
	count = n.Engine.VChans(l) // after clamping
	for vc := 0; vc < count; vc++ {
		n.M.MapVChan(n.M.VChanOutAddr(l, vc), l, vc, true)
		n.M.MapVChan(n.M.VChanInAddr(l, vc), l, vc, false)
		peer.M.MapVChan(peer.M.VChanOutAddr(pl, vc), pl, vc, true)
		peer.M.MapVChan(peer.M.VChanInAddr(pl, vc), pl, vc, false)
	}
	return nil
}

// MustConnect is Connect that panics on bad topology.
func (s *System) MustConnect(a *Node, la int, b *Node, lb int) {
	if err := s.Connect(a, la, b, lb); err != nil {
		panic(err)
	}
}

// AttachHost wires a host device to link l of the node, writing
// program output to w (which may be nil).  The host lives on the
// node's shard, so its traffic takes the synchronous fast path.
func (s *System) AttachHost(n *Node, l int, w io.Writer) (*Host, error) {
	if l < 0 || l >= core.NumLinks {
		return nil, fmt.Errorf("network: link index %d out of range", l)
	}
	if n.wired[l] {
		return nil, fmt.Errorf("network: %s link %d already connected", n.Name, l)
	}
	h := newHost(n.port, n, l, w)
	if n.col != nil {
		h.bus = n.col.bus
	}
	if s.linkMode.Reliable {
		h.end.SetReliable(true, s.linkMode.Timeout, s.linkMode.Retries)
	}
	n.wired[l] = true
	s.hosts = append(s.hosts, h)
	return h, nil
}

// Load places a program image on the node.
func (n *Node) Load(img core.Image) error { return n.M.Load(img) }

// Report describes the outcome of a run.
type Report struct {
	Time    sim.Time
	Settled bool // event queues drained before the limit
	// Running lists nodes that still had an executing process when the
	// run stopped (only possible when !Settled).
	Running []string
	// Halted lists nodes stopped by faults or halt-on-error.
	Halted []string
	// Blocked lists nodes left idle with processes still waiting on
	// channels, timers or events — in a settled system, the signature
	// of deadlock (or of intentionally stopped processes).
	Blocked []string
}

// Run starts every node and drives the coordinator until every shard
// drains or the limit passes (limit 0 means run to quiescence).  A
// settled system with processes still blocked on channels is
// deadlocked, which the caller can detect from its own completion
// signal (e.g. the host exit command).
func (s *System) Run(limit sim.Time) Report {
	for _, n := range s.nodes {
		n.runner.Start()
		if s.hb.set {
			n.Engine.StartHeartbeat()
		}
	}
	var rep Report
	if limit > 0 {
		rep.Settled = s.coord.RunUntil(limit)
	} else {
		s.coord.Run()
		rep.Settled = true
	}
	rep.Time = s.Now()
	for _, n := range s.nodes {
		switch {
		case n.M.Halted():
			rep.Halted = append(rep.Halted, n.Name)
		case !n.M.Idle():
			rep.Running = append(rep.Running, n.Name)
		case n.M.WaitingProcesses() > 0:
			rep.Blocked = append(rep.Blocked, n.Name)
		}
	}
	return rep
}

// TotalStats sums the execution counters across every node.
func (s *System) TotalStats() core.Stats {
	var total core.Stats
	for _, n := range s.nodes {
		total.Add(n.M.Stats())
	}
	return total
}

// Continue resumes a previously run system for another bounded slice.
func (s *System) Continue(until sim.Time) Report {
	var rep Report
	rep.Settled = s.coord.RunUntil(until)
	rep.Time = s.Now()
	return rep
}
