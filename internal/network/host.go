package network

import (
	"io"

	"transputer/internal/link"
	"transputer/internal/probe"
	"transputer/internal/sim"
)

// Host commands.  A program talks to the host development system over
// an ordinary link; every unit is one word (the node's word length,
// little endian), matching occam's word-valued channel outputs.
const (
	// HostCmdPutChar is followed by one word whose low byte is written
	// to the output.
	HostCmdPutChar = 1
	// HostCmdPutWord is followed by one word, recorded in Values and
	// printed in decimal with a newline.
	HostCmdPutWord = 2
	// HostCmdExit marks successful completion of the program.
	HostCmdExit = 4
	// HostCmdGetWord requests one word from the host input queue; the
	// host replies with a word message.
	HostCmdGetWord = 5
)

// Host is the development-system end of a link: it consumes the
// protocol above and supplies requested input words.
type Host struct {
	end       *link.HostEnd
	out       io.Writer
	node      *Node
	link      int
	wordBytes int

	// Values records every word the program reported.
	Values []int64
	// Done is set by the exit command.
	Done bool
	// DoneAt is the simulated time of the exit command.
	DoneAt sim.Time

	k     sim.Clock
	input []int64 // words queued for HostCmdGetWord
	bus   *probe.Bus
}

// emit publishes a host-command probe event attributed to the node the
// host is wired to.
func (h *Host) emit(cmd, arg int64) {
	if h.bus == nil {
		return
	}
	h.bus.Publish(probe.Event{
		Time: h.k.Now(), Node: h.node.Name,
		Kind: probe.HostCommand, Arg: arg, Bytes: int(cmd),
	})
}

func newHost(k sim.Clock, n *Node, l int, w io.Writer) *Host {
	h := &Host{
		end:       link.NewHostEnd(k),
		out:       w,
		node:      n,
		link:      l,
		wordBytes: n.M.BytesPerWord(),
		k:         k,
	}
	link.ConnectHost(n.Engine, l, h.end)
	h.readCommand()
	return h
}

// QueueInput adds words for the program to read with HostCmdGetWord.
func (h *Host) QueueInput(words ...int64) { h.input = append(h.input, words...) }

// Stall reports a transfer abandoned mid-message, or nil.  The host
// always has a command read pending, so an idle receive that has seen
// no bytes is normal; a receive stopped partway through a word, or any
// unfinished send, means the device hit EOF mid-protocol.
func (h *Host) Stall() *HostStall {
	if got, want, active := h.end.RecvProgress(); active && got > 0 && got < want {
		return &HostStall{Node: h.node.Name, Link: h.link, Got: got, Want: want}
	}
	if sent, want, active := h.end.SendProgress(); active && sent < want {
		return &HostStall{Node: h.node.Name, Link: h.link, Got: sent, Want: want, Out: true}
	}
	return nil
}

func (h *Host) readCommand() {
	h.end.Recv(h.wordBytes, func(b []byte) {
		switch decodeWord(b) {
		case HostCmdPutChar:
			h.end.Recv(h.wordBytes, func(d []byte) {
				v := decodeWord(d)
				h.emit(HostCmdPutChar, v)
				h.write([]byte{byte(v)})
				h.readCommand()
			})
		case HostCmdPutWord:
			h.end.Recv(h.wordBytes, func(d []byte) {
				v := decodeWord(d)
				h.emit(HostCmdPutWord, v)
				h.Values = append(h.Values, v)
				h.write([]byte(formatInt(v) + "\n"))
				h.readCommand()
			})
		case HostCmdExit:
			h.emit(HostCmdExit, 0)
			h.Done = true
			h.DoneAt = h.k.Now()
			// Keep listening so stray words do not wedge the link.
			h.readCommand()
		case HostCmdGetWord:
			var v int64
			if len(h.input) > 0 {
				v = h.input[0]
				h.input = h.input[1:]
			}
			h.emit(HostCmdGetWord, v)
			h.end.Send(encodeWord(v, h.wordBytes), nil)
			h.readCommand()
		default:
			// Unknown command: emit as raw bytes to stay debuggable.
			h.write(b)
			h.readCommand()
		}
	})
}

func (h *Host) write(b []byte) {
	if h.out != nil {
		h.out.Write(b)
	}
}

func decodeWord(d []byte) int64 {
	var u uint64
	for i := len(d) - 1; i >= 0; i-- {
		u = u<<8 | uint64(d[i])
	}
	// Sign extend from the word width.
	bits := uint(len(d) * 8)
	if u&(1<<(bits-1)) != 0 {
		u |= ^uint64(0) << bits
	}
	return int64(u)
}

func encodeWord(v int64, n int) []byte {
	out := make([]byte, n)
	u := uint64(v)
	for i := 0; i < n; i++ {
		out[i] = byte(u)
		u >>= 8
	}
	return out
}

func formatInt(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	var buf [21]byte
	i := len(buf)
	u := uint64(v)
	if neg {
		u = uint64(-v)
	}
	for u > 0 {
		i--
		buf[i] = byte('0' + u%10)
		u /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
