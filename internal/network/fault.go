package network

import (
	"fmt"
	"sort"
	"strings"

	"transputer/internal/core"
	"transputer/internal/fault"
	"transputer/internal/link"
	"transputer/internal/probe"
	"transputer/internal/sim"
)

// SetLinkMode selects the link protocol for the whole system: the
// paper's plain 11-bit protocol (the default) or the error-detecting
// mode with CRC trailers, NAKs and bounded retransmission.  It applies
// to every node and host already in the system and to any added later.
func (s *System) SetLinkMode(m LinkMode) {
	s.linkMode = m
	for _, n := range s.nodes {
		n.Engine.SetReliable(m.Reliable, m.Timeout, m.Retries)
	}
	for _, h := range s.hosts {
		h.end.SetReliable(m.Reliable, m.Timeout, m.Retries)
	}
}

// ApplyFaults installs a seeded fault plan: per-packet hooks on the
// targeted wires, and scheduled severs and halts on the kernel.  Call
// it after the topology is fully wired and before Run.
func (s *System) ApplyFaults(plan fault.Plan) error {
	if plan.Empty() {
		return nil
	}
	inj, err := fault.NewInjector(plan)
	if err != nil {
		return err
	}
	if s.hb.set {
		// With liveness monitoring on, peers resynchronise their link
		// streams at the heartbeat down verdict and the restarted node
		// resets its own at boot.  An outage shorter than the detection
		// window would reset only one end and desynchronise the byte
		// stream, so reject such plans outright.
		timeout := s.hb.timeout
		if timeout <= 0 {
			timeout = link.DefaultBeatTimeout
		}
		for i, r := range plan.Rules {
			if r.Kind != fault.Restart {
				continue
			}
			var haltAt sim.Time
			for _, h := range plan.Rules {
				if h.Kind == fault.Halt && h.Node == r.Node && h.At < r.At && h.At > haltAt {
					haltAt = h.At
				}
			}
			if haltAt > 0 && r.At-haltAt < 2*timeout {
				return fmt.Errorf("network: rule %d: restart of %q only %v after its halt; "+
					"outages must exceed twice the heartbeat timeout (%v) for link streams to resynchronise",
					i, r.Node, r.At-haltAt, timeout)
			}
		}
	}
	for _, n := range s.nodes {
		for l := 0; l < core.NumLinks; l++ {
			hook := inj.WireHook(n.Name, l)
			if hook == nil {
				continue
			}
			if !n.Engine.Connected(l) {
				return fmt.Errorf("network: fault targets unwired link end %s.%d", n.Name, l)
			}
			n.Engine.SetFaultHook(l, hook)
		}
	}
	for _, r := range inj.Timed() {
		n, ok := s.byName[r.Node]
		if !ok {
			return fmt.Errorf("network: fault targets unknown transputer %q", r.Node)
		}
		switch r.Kind {
		case fault.Sever:
			if !n.Engine.Connected(r.Link) {
				return fmt.Errorf("network: sever targets unwired link end %s.%d", n.Name, r.Link)
			}
			lnk := r.Link
			// Timed faults act on one node, so they live on that node's
			// shard and fire in its deterministic event order.
			n.port.Schedule(r.At, func() { n.Engine.SeverLink(lnk) })
		case fault.Halt:
			n.port.Schedule(r.At, func() {
				n.M.ForceHalt("fault injection")
				n.Engine.StopHeartbeat()
				n.Engine.SeverAll()
				s.notifyDown(n)
			})
		case fault.Restart:
			// Decide now, from the plan, which links the revived node
			// gets back: every wired link except those a Sever cut for
			// good and those whose peer is itself down at the restart
			// instant (the peer's own later restart restores the shared
			// link).  Cross-shard pairs that will be restored must stay
			// in the coordinator's wiring matrix across the outage.
			restore := restorableLinks(n, plan, r.At)
			for _, l := range restore {
				if mark := n.severs[l]; mark != nil {
					mark.keep = true
				}
			}
			n.port.Schedule(r.At, func() { s.restartNode(n, restore) })
		}
	}
	return nil
}

// restorableLinks lists the links of n that a restart at the given
// instant reconnects.
func restorableLinks(n *Node, plan fault.Plan, at sim.Time) []int {
	var out []int
	for l := 0; l < core.NumLinks; l++ {
		if !n.Engine.Connected(l) {
			continue
		}
		severed := false
		pn, pl, engPeer := n.Peer(l)
		for _, r := range plan.Rules {
			if r.Kind != fault.Sever || r.At > at {
				continue
			}
			if r.Node == n.Name && r.Link == l ||
				engPeer && r.Node == pn.Name && r.Link == pl {
				severed = true
				break
			}
		}
		if severed {
			continue
		}
		if engPeer && nodeDownAt(plan, pn.Name, at) {
			continue
		}
		out = append(out, l)
	}
	return out
}

// nodeDownAt reports whether the plan has the named node halted at the
// given instant: its latest halt or restart rule at or before that
// time decides, with a tie going to the halt (conservative — a link to
// a node halting at this very instant is not worth restoring).
func nodeDownAt(plan fault.Plan, node string, at sim.Time) bool {
	var last sim.Time
	down := false
	for _, r := range plan.Rules {
		if r.Node != node || r.At > at {
			continue
		}
		switch r.Kind {
		case fault.Halt:
			if r.At >= last {
				last, down = r.At, true
			}
		case fault.Restart:
			if r.At > last {
				last, down = r.At, false
			}
		}
	}
	return down
}

// restartNode revives a halted node: the processor resumes with its
// frozen state, the given links are reconnected and their in-flight
// error-detecting transfers recovered at both ends, the liveness
// monitor restarts, and node-up subscribers (the routing layer) are
// told to rejoin.  Runs on the node's shard at the restart instant.
func (s *System) restartNode(n *Node, restore []int) {
	if !n.M.ClearForcedHalt() {
		return
	}
	now := n.port.Now()
	for _, l := range restore {
		n.Engine.RestoreLink(l)
	}
	// Node-up subscribers run between restore and recovery on purpose:
	// the routing layer's boot resets the restored links to power-on
	// state, which makes the recovery below a no-op on router-managed
	// links — a restarted router node must not retransmit a pre-crash
	// byte into a peer that reset its stream.  On bare systems the
	// subscriber list is empty and recovery resumes frozen transfers.
	s.notifyUp(n)
	for _, l := range restore {
		// RestoreLink (above) and the peer recovery both post to the
		// peer's shard at now+Lookahead, and mailbox order (same
		// instant, same source) revives the wire before any
		// retransmission crosses it.
		n.Engine.RecoverLink(l)
		pn, pl, ok := n.Peer(l)
		if !ok {
			continue // host link: the wire is back; stalled host transfers are not replayed
		}
		if pn.port == n.port {
			// A self-connection: both ends are this very node.
			pn.Engine.RecoverLink(pl)
		} else {
			// Distinct peer: the recovery crosses node timelines, so it
			// travels as a keyed post one Lookahead out — through the
			// mailbox when the peer is on another shard, as an
			// intra-kernel delivery when fused — so the revival order is
			// identical at every partition.
			pe, plnk := pn.Engine, pl
			n.port.Post(pn.port, now+Lookahead, func() { pe.RecoverLink(plnk) })
		}
	}
	n.Engine.StartHeartbeat()
	n.runner.Start()
}

// WatchdogProc is one blocked process in a watchdog report.
type WatchdogProc struct {
	Node string
	core.BlockedProcess
}

// DownLink is a link whose reliable-mode sender exhausted its retry
// budget.
type DownLink struct {
	Node    string
	Link    int
	Retries int
}

// HostStall reports a host transfer abandoned mid-message: the link
// went quiet (severed wire, halted peer, or a peer that stopped
// mid-protocol) with bytes still owed.  This is the structured form of
// what used to be a silent indefinite block.
type HostStall struct {
	Node string // node the host is wired to
	Link int
	Got  int  // bytes transferred before the stall
	Want int  // bytes the transfer expected
	Out  bool // true when the host was sending
}

// Error satisfies error so a stall can propagate as one.
func (e HostStall) Error() string {
	dir := "receiving"
	if e.Out {
		dir = "sending"
	}
	return fmt.Sprintf("host on %s.%d stalled %s: %d of %d bytes before EOF",
		e.Node, e.Link, dir, e.Got, e.Want)
}

// WatchdogReport names every process the system is waiting on when
// simulated time can no longer advance: the evidence for a deadlock
// verdict, one line per process.
type WatchdogReport struct {
	Time       sim.Time
	Procs      []WatchdogProc
	DownLinks  []DownLink
	HostStalls []HostStall
}

// Empty reports whether the watchdog found nothing stuck.
func (r *WatchdogReport) Empty() bool {
	return len(r.Procs) == 0 && len(r.DownLinks) == 0 && len(r.HostStalls) == 0
}

// String renders the report in the format documented in DESIGN.md.
func (r *WatchdogReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "deadlock watchdog: simulated time stuck at %v\n", r.Time)
	for _, p := range r.Procs {
		fmt.Fprintf(&b, "  %s: %s\n", p.Node, p.BlockedProcess)
	}
	for _, d := range r.DownLinks {
		fmt.Fprintf(&b, "  %s: link %d DOWN after %d retries\n", d.Node, d.Link, d.Retries)
	}
	for _, h := range r.HostStalls {
		fmt.Fprintf(&b, "  host: %s\n", h.Error())
	}
	return b.String()
}

// Watchdog inspects a settled system for processes that can never run
// again.  It returns nil when nothing is blocked: a quiet system that
// simply finished.  Each blocked process is published to the probe bus
// as a Deadlock event, so the verdict lands in timelines and metrics
// alongside the traffic that led to it.
func (s *System) Watchdog() *WatchdogReport {
	rep := &WatchdogReport{Time: s.Now()}
	for _, n := range s.nodes {
		if n.M.Halted() {
			continue // a halt is its own verdict, not a deadlock
		}
		for _, p := range n.M.BlockedProcesses() {
			rep.Procs = append(rep.Procs, WatchdogProc{Node: n.Name, BlockedProcess: p})
			if s.bus != nil {
				s.bus.Publish(probe.Event{
					Time: rep.Time, Node: n.Name, Kind: probe.Deadlock,
					Proc: p.Wdesc, Addr: p.Addr, Link: p.Link,
					Arg: int64(p.Kind),
				})
			}
		}
		for l := 0; l < core.NumLinks; l++ {
			if down, retries := n.Engine.LinkDown(l); down {
				rep.DownLinks = append(rep.DownLinks, DownLink{Node: n.Name, Link: l, Retries: retries})
			}
		}
	}
	for _, h := range s.hosts {
		if st := h.Stall(); st != nil {
			rep.HostStalls = append(rep.HostStalls, *st)
		}
	}
	sort.Slice(rep.Procs, func(i, j int) bool {
		a, b := rep.Procs[i], rep.Procs[j]
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Wdesc < b.Wdesc
	})
	if rep.Empty() {
		return nil
	}
	return rep
}
