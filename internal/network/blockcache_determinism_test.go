package network_test

import (
	"reflect"
	"testing"

	"transputer/internal/apps/sieve"
	"transputer/internal/bench"
	"transputer/internal/core"
	"transputer/internal/probe"
	"transputer/internal/sim"
)

// The predecoded block cache and the quiescence-extended windows are
// pure simulator-performance machinery: these tests pin that neither
// is visible in any observable output — probe timelines, per-node
// statistics down to the opcode histograms, or settle times — at any
// worker count.

// sieveObservables runs the sieve pipeline with the given worker
// count and cache setting, capturing every probe event and every
// node's full statistics.
func sieveObservables(t *testing.T, workers int, cache bool) (sim.Time, []probe.Event, []core.Stats) {
	t.Helper()
	s, err := sieve.Build(sieve.Params{Limit: 30, Stages: 10})
	if err != nil {
		t.Fatal(err)
	}
	s.Net.SetWorkers(workers)
	s.Net.SetBlockCache(cache)
	bus := probe.NewBus()
	var evs []probe.Event
	bus.Subscribe(func(e probe.Event) { evs = append(evs, e) })
	s.Net.AttachProbe(bus)
	_, rep := s.Run(sim.Second)
	if !rep.Settled {
		t.Fatalf("workers=%d cache=%v: did not settle", workers, cache)
	}
	var stats []core.Stats
	for _, n := range s.Net.Nodes() {
		stats = append(stats, n.M.Stats())
	}
	return rep.Time, evs, stats
}

// TestBlockCacheInvisibleInTimeline runs a shipped example with the
// cache force-disabled and enabled: the merged probe timeline, the
// per-node statistics (function and operation histograms included)
// and the settle time must be identical.
func TestBlockCacheInvisibleInTimeline(t *testing.T) {
	tOn, evOn, stOn := sieveObservables(t, 1, true)
	tOff, evOff, stOff := sieveObservables(t, 1, false)
	if tOn != tOff {
		t.Errorf("settle times differ: %v vs %v", tOn, tOff)
	}
	if len(evOn) != len(evOff) {
		t.Fatalf("timeline lengths differ: %d vs %d", len(evOn), len(evOff))
	}
	for i := range evOn {
		if evOn[i] != evOff[i] {
			t.Fatalf("timeline event %d differs:\non:  %+v\noff: %+v", i, evOn[i], evOff[i])
		}
	}
	if !reflect.DeepEqual(stOn, stOff) {
		t.Errorf("per-node stats differ:\non:  %+v\noff: %+v", stOn, stOff)
	}
}

// TestBlockCacheDeterministicAcrossWorkers crosses worker counts with
// cache settings: all four combinations must yield one observable
// history.
func TestBlockCacheDeterministicAcrossWorkers(t *testing.T) {
	tRef, evRef, stRef := sieveObservables(t, 1, true)
	for _, workers := range []int{1, 4} {
		for _, cache := range []bool{true, false} {
			if workers == 1 && cache {
				continue
			}
			tt, ev, st := sieveObservables(t, workers, cache)
			if tt != tRef {
				t.Errorf("workers=%d cache=%v: settle time %v, want %v", workers, cache, tt, tRef)
			}
			if !reflect.DeepEqual(ev, evRef) {
				t.Errorf("workers=%d cache=%v: timeline differs", workers, cache)
			}
			if !reflect.DeepEqual(st, stRef) {
				t.Errorf("workers=%d cache=%v: stats differ", workers, cache)
			}
		}
	}
}

// TestSparseTrafficDeterministicAcrossWorkers runs the compute-heavy
// ring — links idle for almost the whole run, so windows are extended
// by quiet promises and topology distances — at one and four workers.
// The extended horizons must not change a single observable.
func TestSparseTrafficDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int, cache bool) (sim.Time, uint64, []core.Stats) {
		s, err := bench.ComputeRing(4)
		if err != nil {
			t.Fatal(err)
		}
		s.SetWorkers(workers)
		s.SetBlockCache(cache)
		rep := s.Run(10 * sim.Second)
		if !rep.Settled || len(rep.Blocked) > 0 || len(rep.Halted) > 0 {
			t.Fatalf("workers=%d cache=%v: bad finish: %+v", workers, cache, rep)
		}
		var stats []core.Stats
		for _, n := range s.Nodes() {
			stats = append(stats, n.M.Stats())
		}
		return rep.Time, s.TotalStats().Cycles, stats
	}
	tRef, cRef, stRef := run(1, true)
	for _, workers := range []int{1, 4} {
		for _, cache := range []bool{true, false} {
			if workers == 1 && cache {
				continue
			}
			tt, cc, st := run(workers, cache)
			if tt != tRef || cc != cRef {
				t.Errorf("workers=%d cache=%v: time/cycles %v/%d, want %v/%d",
					workers, cache, tt, cc, tRef, cRef)
			}
			if !reflect.DeepEqual(st, stRef) {
				t.Errorf("workers=%d cache=%v: per-node stats differ", workers, cache)
			}
		}
	}
}

// TestVChanBlockCacheInvisible runs the virtual-channel fan — eight
// producer streams multiplexed over one wire — across the worker ×
// cache grid, capturing the full probe timeline.  Cross-shard chunk
// deliveries here routinely land at the same instant as the
// destination's own instruction stream, the collision that exposed
// the barrier-dependent delivery ordering the kernel's delivery rank
// now pins (see sim.Kernel's less).
func TestVChanBlockCacheInvisible(t *testing.T) {
	run := func(workers int, cache bool) (sim.Time, []probe.Event, []core.Stats) {
		s, err := bench.VCFan(8)
		if err != nil {
			t.Fatal(err)
		}
		s.SetWorkers(workers)
		s.SetBlockCache(cache)
		bus := probe.NewBus()
		var evs []probe.Event
		bus.Subscribe(func(e probe.Event) { evs = append(evs, e) })
		s.AttachProbe(bus)
		rep := s.Run(sim.Second)
		if !rep.Settled || len(rep.Blocked) > 0 || len(rep.Halted) > 0 {
			t.Fatalf("workers=%d cache=%v: bad finish: %+v", workers, cache, rep)
		}
		var stats []core.Stats
		for _, n := range s.Nodes() {
			stats = append(stats, n.M.Stats())
		}
		return rep.Time, evs, stats
	}
	tRef, evRef, stRef := run(1, true)
	for _, workers := range []int{1, 4} {
		for _, cache := range []bool{true, false} {
			if workers == 1 && cache {
				continue
			}
			tt, ev, st := run(workers, cache)
			if tt != tRef {
				t.Errorf("workers=%d cache=%v: settle time %v, want %v", workers, cache, tt, tRef)
			}
			if len(ev) != len(evRef) {
				t.Fatalf("workers=%d cache=%v: timeline lengths differ: %d vs %d",
					workers, cache, len(ev), len(evRef))
			}
			for i := range ev {
				if ev[i] != evRef[i] {
					t.Fatalf("workers=%d cache=%v: timeline event %d differs:\ngot:  %+v\nwant: %+v",
						workers, cache, i, ev[i], evRef[i])
				}
			}
			if !reflect.DeepEqual(st, stRef) {
				t.Errorf("workers=%d cache=%v: per-node stats differ", workers, cache)
			}
		}
	}
}
