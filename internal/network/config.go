package network

import (
	"fmt"
	"strconv"
	"strings"

	"transputer/internal/core"
	"transputer/internal/fault"
	"transputer/internal/sim"
)

// Topology is a parsed network description: the text format used by
// the tnet tool to configure a system of transputers, in the spirit of
// occam configuration.
//
//	# a three-transputer workstation (paper, figure 6)
//	transputer app  t424 mem=64K program=app.occ
//	transputer disk t424 mem=64K program=disk.occ
//	transputer gfx  t424 mem=64K program=gfx.occ
//	connect app.1 disk.0
//	connect app.2 gfx.0
//	host app.0
//	input app 5 10
//	run 100ms
//
// Fault campaigns add a seed, an optional error-detecting link mode,
// and scripted faults:
//
//	seed 42
//	linkmode reliable timeout=10us retries=32
//	fault drop app.1 rate=0.05 pkt=data
//	fault corrupt app.1 rate=0.01
//	fault jitter disk.0 rate=0.5 max=2us
//	fault sever app.2 at=500us
//	fault halt gfx at=1ms
type Topology struct {
	Transputers []TransputerSpec
	Connections []Connection
	Hosts       []HostSpec
	Inputs      map[string][]int64
	RunLimit    sim.Time

	// Seed drives every random decision of the fault plan.
	Seed uint64
	// LinkMode selects the paper's plain protocol or the
	// error-detecting mode for every link in the system.
	LinkMode LinkMode
	// Faults is the scripted fault plan (empty when none).
	Faults []fault.Rule
}

// LinkMode configures the link protocol for a whole system.
type LinkMode struct {
	Reliable bool
	Timeout  sim.Time // 0 means the link package default
	Retries  int      // 0 means the link package default
}

// Plan packages the topology's fault script as a seeded plan.
func (t *Topology) Plan() fault.Plan {
	return fault.Plan{Seed: t.Seed, Rules: t.Faults}
}

// TransputerSpec describes one node.
type TransputerSpec struct {
	Name     string
	Model    string // "t424" or "t222"
	MemBytes int    // 0 means the model default
	Program  string // path to .occ or .tasm source
}

// Connection joins two link ends.
type Connection struct {
	A     string
	ALink int
	B     string
	BLink int
}

// HostSpec attaches a host device to a node's link.
type HostSpec struct {
	Node string
	Link int
}

// ParseTopology reads the text format above.  Every error names the
// line it came from; duplicate node names, double-wired link ends and
// references to undeclared nodes are rejected.
func ParseTopology(src string) (*Topology, error) {
	topo := &Topology{Inputs: make(map[string][]int64)}
	nodeLine := make(map[string]int)  // node name -> declaring line
	wiredLine := make(map[string]int) // "node.link" -> wiring line
	// refs records node-name uses to validate after all declarations.
	type ref struct {
		name string
		line int
	}
	var refs []ref
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		no := lineNo + 1
		fail := func(format string, args ...interface{}) error {
			return fmt.Errorf("topology line %d: %s", no, fmt.Sprintf(format, args...))
		}
		// claim marks a link end as wired, rejecting double wiring.
		claim := func(end string) error {
			if prev, dup := wiredLine[end]; dup {
				return fail("link end %s already wired at line %d", end, prev)
			}
			wiredLine[end] = no
			return nil
		}
		switch fields[0] {
		case "transputer":
			if len(fields) < 3 {
				return nil, fail("transputer needs a name and model")
			}
			spec := TransputerSpec{Name: fields[1], Model: strings.ToLower(fields[2])}
			if prev, dup := nodeLine[spec.Name]; dup {
				return nil, fail("duplicate transputer name %q (first declared at line %d)", spec.Name, prev)
			}
			if spec.Model != "t424" && spec.Model != "t222" {
				return nil, fail("unknown model %q", fields[2])
			}
			for _, opt := range fields[3:] {
				k, v, ok := strings.Cut(opt, "=")
				if !ok {
					return nil, fail("bad option %q", opt)
				}
				switch k {
				case "mem":
					n, err := parseSize(v)
					if err != nil {
						return nil, fail("bad memory size %q", v)
					}
					spec.MemBytes = n
				case "program":
					spec.Program = v
				default:
					return nil, fail("unknown option %q", k)
				}
			}
			nodeLine[spec.Name] = no
			topo.Transputers = append(topo.Transputers, spec)
		case "connect":
			if len(fields) != 3 {
				return nil, fail("connect needs two link ends")
			}
			a, al, err := parseEnd(fields[1])
			if err != nil {
				return nil, fail("%v", err)
			}
			b, bl, err := parseEnd(fields[2])
			if err != nil {
				return nil, fail("%v", err)
			}
			if a == b && al == bl {
				return nil, fail("cannot connect link end %s to itself", fields[1])
			}
			for _, end := range []string{fields[1], fields[2]} {
				if err := claim(end); err != nil {
					return nil, err
				}
			}
			refs = append(refs, ref{a, no}, ref{b, no})
			topo.Connections = append(topo.Connections, Connection{A: a, ALink: al, B: b, BLink: bl})
		case "host":
			if len(fields) != 2 {
				return nil, fail("host needs one link end")
			}
			n, l, err := parseEnd(fields[1])
			if err != nil {
				return nil, fail("%v", err)
			}
			if err := claim(fields[1]); err != nil {
				return nil, err
			}
			refs = append(refs, ref{n, no})
			topo.Hosts = append(topo.Hosts, HostSpec{Node: n, Link: l})
		case "input":
			if len(fields) < 3 {
				return nil, fail("input needs a node and at least one word")
			}
			for _, f := range fields[2:] {
				v, err := strconv.ParseInt(f, 10, 64)
				if err != nil {
					return nil, fail("bad input word %q", f)
				}
				topo.Inputs[fields[1]] = append(topo.Inputs[fields[1]], v)
			}
			refs = append(refs, ref{fields[1], no})
		case "run":
			if len(fields) != 2 {
				return nil, fail("run needs a duration")
			}
			d, err := parseDuration(fields[1])
			if err != nil {
				return nil, fail("bad duration %q", fields[1])
			}
			topo.RunLimit = d
		case "seed":
			if len(fields) != 2 {
				return nil, fail("seed needs one number")
			}
			v, err := strconv.ParseUint(fields[1], 0, 64)
			if err != nil {
				return nil, fail("bad seed %q", fields[1])
			}
			topo.Seed = v
		case "linkmode":
			mode, err := parseLinkMode(fields[1:])
			if err != nil {
				return nil, fail("%v", err)
			}
			topo.LinkMode = mode
		case "fault":
			rule, err := parseFault(fields[1:])
			if err != nil {
				return nil, fail("%v", err)
			}
			refs = append(refs, ref{rule.Node, no})
			topo.Faults = append(topo.Faults, rule)
		default:
			return nil, fail("unknown directive %q", fields[0])
		}
	}
	for _, r := range refs {
		if _, ok := nodeLine[r.name]; !ok {
			return nil, fmt.Errorf("topology line %d: unknown transputer %q", r.line, r.name)
		}
	}
	return topo, nil
}

// parseLinkMode reads the arguments of a linkmode directive.
func parseLinkMode(args []string) (LinkMode, error) {
	var mode LinkMode
	if len(args) == 0 {
		return mode, fmt.Errorf("linkmode needs a mode (standard or reliable)")
	}
	switch args[0] {
	case "standard":
		if len(args) > 1 {
			return mode, fmt.Errorf("linkmode standard takes no options")
		}
		return mode, nil
	case "reliable":
		mode.Reliable = true
	default:
		return mode, fmt.Errorf("unknown link mode %q (want standard or reliable)", args[0])
	}
	for _, opt := range args[1:] {
		k, v, ok := strings.Cut(opt, "=")
		if !ok {
			return mode, fmt.Errorf("bad linkmode option %q", opt)
		}
		switch k {
		case "timeout":
			d, err := parseDuration(v)
			if err != nil || d <= 0 {
				return mode, fmt.Errorf("bad timeout %q", v)
			}
			mode.Timeout = d
		case "retries":
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				return mode, fmt.Errorf("bad retries %q", v)
			}
			mode.Retries = n
		default:
			return mode, fmt.Errorf("unknown linkmode option %q", k)
		}
	}
	return mode, nil
}

// parseFault reads the arguments of a fault directive:
//
//	fault corrupt <node>.<link> rate=R
//	fault drop    <node>.<link> rate=R [pkt=data|ack|any]
//	fault jitter  <node>.<link> rate=R max=D
//	fault sever   <node>.<link> at=T
//	fault halt    <node>        at=T
func parseFault(args []string) (fault.Rule, error) {
	var rule fault.Rule
	if len(args) < 2 {
		return rule, fmt.Errorf("fault needs a kind and a target")
	}
	kind, err := fault.ParseKind(args[0])
	if err != nil {
		return rule, err
	}
	rule.Kind = kind
	if kind == fault.Halt {
		if strings.ContainsRune(args[1], '.') {
			return rule, fmt.Errorf("fault halt targets a node, not a link end")
		}
		rule.Node = args[1]
		rule.Link = -1
	} else {
		n, l, err := parseEnd(args[1])
		if err != nil {
			return rule, err
		}
		rule.Node = n
		rule.Link = l
	}
	for _, opt := range args[2:] {
		k, v, ok := strings.Cut(opt, "=")
		if !ok {
			return rule, fmt.Errorf("bad fault option %q", opt)
		}
		switch k {
		case "rate":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return rule, fmt.Errorf("bad rate %q", v)
			}
			rule.Rate = f
		case "pkt":
			pc, err := fault.ParsePacketClass(v)
			if err != nil {
				return rule, err
			}
			rule.Pkt = pc
		case "at":
			d, err := parseDuration(v)
			if err != nil {
				return rule, fmt.Errorf("bad time %q", v)
			}
			rule.At = d
		case "max":
			d, err := parseDuration(v)
			if err != nil {
				return rule, fmt.Errorf("bad duration %q", v)
			}
			rule.Max = d
		default:
			return rule, fmt.Errorf("unknown fault option %q", k)
		}
	}
	if err := rule.Validate(); err != nil {
		return rule, err
	}
	return rule, nil
}

// parseEnd reads a "node.link" link end, checking the link index range.
func parseEnd(s string) (node string, link int, err error) {
	node, ls, ok := strings.Cut(s, ".")
	if !ok || node == "" {
		return "", 0, fmt.Errorf("bad link end %q (want node.link)", s)
	}
	link, err = strconv.Atoi(ls)
	if err != nil {
		return "", 0, fmt.Errorf("bad link number in %q", s)
	}
	if link < 0 || link >= core.NumLinks {
		return "", 0, fmt.Errorf("link %d in %q out of range 0..%d", link, s, core.NumLinks-1)
	}
	return node, link, nil
}

func parseSize(s string) (int, error) {
	mult := 1
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult = 1024
		s = s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult = 1024 * 1024
		s = s[:len(s)-1]
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	return n * mult, nil
}

func parseDuration(s string) (sim.Time, error) {
	mult := sim.Nanosecond
	switch {
	case strings.HasSuffix(s, "ms"):
		mult = sim.Millisecond
		s = s[:len(s)-2]
	case strings.HasSuffix(s, "us"):
		mult = sim.Microsecond
		s = s[:len(s)-2]
	case strings.HasSuffix(s, "ns"):
		s = s[:len(s)-2]
	case strings.HasSuffix(s, "s"):
		mult = sim.Second
		s = s[:len(s)-1]
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	return sim.Time(n) * mult, nil
}
