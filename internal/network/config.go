package network

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"transputer/internal/core"
	"transputer/internal/fault"
	"transputer/internal/link"
	"transputer/internal/sim"
)

// Topology is a parsed network description: the text format used by
// the tnet tool to configure a system of transputers, in the spirit of
// occam configuration.
//
//	# a three-transputer workstation (paper, figure 6)
//	transputer app  t424 mem=64K program=app.occ
//	transputer disk t424 mem=64K program=disk.occ
//	transputer gfx  t424 mem=64K program=gfx.occ
//	connect app.1 disk.0
//	connect app.2 gfx.0
//	host app.0
//	input app 5 10
//	run 100ms
//
// Fault campaigns add a seed, an optional error-detecting link mode,
// and scripted faults:
//
//	seed 42
//	linkmode reliable timeout=10us retries=32
//	fault drop app.1 rate=0.05 pkt=data
//	fault corrupt app.1 rate=0.01
//	fault jitter disk.0 rate=0.5 max=2us
//	fault sever app.2 at=500us
//	fault halt gfx at=1ms
//	fault restart gfx at=2ms
//
// Self-healing topologies enable liveness monitoring and the routing
// layer, and inject end-to-end messages instead of running programs:
//
//	linkmode reliable
//	heartbeat interval=20us timeout=100us
//	route ttl=32
//	message app gfx at=100us data=hello
//
// Virtual channels multiplex several logical channels over one
// physical wire (naming either end of the connection is equivalent):
//
//	vchan app.1 count=8
//
// Shard fusion co-locates chattering nodes on one simulation shard
// (results are identical; only simulator speed changes):
//
//	shard app gfx disk
type Topology struct {
	Transputers []TransputerSpec
	Connections []Connection
	Hosts       []HostSpec
	Inputs      map[string][]int64
	RunLimit    sim.Time

	// Seed drives every random decision of the fault plan.
	Seed uint64
	// LinkMode selects the paper's plain protocol or the
	// error-detecting mode for every link in the system.
	LinkMode LinkMode
	// Faults is the scripted fault plan (empty when none).
	Faults []fault.Rule
	// Heartbeat configures link liveness monitoring.
	Heartbeat HeartbeatSpec
	// Route enables the store-and-forward routing layer.
	Route RouteSpec
	// Messages are end-to-end injections for routed topologies.
	Messages []MessageSpec
	// VChans multiplexes virtual channels over physical links.
	VChans []VChanSpec
	// Shards lists explicit fusion groups (`shard a b c`): the named
	// nodes share one event-queue shard.  Purely a simulator-performance
	// placement; results are byte-identical at any partition.
	Shards [][]string
}

// VChanSpec multiplexes Count virtual channels over the physical link
// at Node.Link (and, implicitly, its connected peer end).
type VChanSpec struct {
	Node  string
	Link  int
	Count int
}

// HeartbeatSpec configures the link liveness monitor; zero Interval or
// Timeout select the link package defaults.
type HeartbeatSpec struct {
	Set      bool
	Interval sim.Time
	Timeout  sim.Time
}

// RouteSpec enables and tunes the routing layer; zero values select
// the route package defaults.
type RouteSpec struct {
	Enabled bool
	Hop     sim.Time // per-hop custody timeout
	Replay  sim.Time // end-to-end replay backoff base
	TTL     int      // hop budget
}

// MessageSpec is one scripted end-to-end message.
type MessageSpec struct {
	From, To string
	At       sim.Time
	Data     string
}

// LinkMode configures the link protocol for a whole system.
type LinkMode struct {
	Reliable bool
	Timeout  sim.Time // 0 means the link package default
	Retries  int      // 0 means the link package default
}

// Plan packages the topology's fault script as a seeded plan.
func (t *Topology) Plan() fault.Plan {
	return fault.Plan{Seed: t.Seed, Rules: t.Faults}
}

// TransputerSpec describes one node.
type TransputerSpec struct {
	Name     string
	Model    string // "t424" or "t222"
	MemBytes int    // 0 means the model default
	Program  string // path to .occ or .tasm source
}

// Connection joins two link ends.
type Connection struct {
	A     string
	ALink int
	B     string
	BLink int
}

// HostSpec attaches a host device to a node's link.
type HostSpec struct {
	Node string
	Link int
}

// ParseTopology reads the text format above.  Every error names the
// line it came from; duplicate node names, double-wired link ends and
// references to undeclared nodes are rejected.
func ParseTopology(src string) (*Topology, error) {
	topo := &Topology{Inputs: make(map[string][]int64)}
	nodeLine := make(map[string]int)  // node name -> declaring line
	wiredLine := make(map[string]int) // "node.link" -> wiring line
	var faultLine []int               // line of each rule in topo.Faults
	var vchanLine []int               // line of each spec in topo.VChans
	shardOf := make(map[string]int)   // node name -> line of its shard group
	heartbeatAt, routeAt := 0, 0      // lines of the singleton directives
	// refs records node-name uses to validate after all declarations.
	type ref struct {
		name string
		line int
	}
	var refs []ref
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		no := lineNo + 1
		fail := func(format string, args ...interface{}) error {
			return fmt.Errorf("topology line %d: %s", no, fmt.Sprintf(format, args...))
		}
		// claim marks a link end as wired, rejecting double wiring.
		claim := func(end string) error {
			if prev, dup := wiredLine[end]; dup {
				return fail("link end %s already wired at line %d", end, prev)
			}
			wiredLine[end] = no
			return nil
		}
		switch fields[0] {
		case "transputer":
			if len(fields) < 3 {
				return nil, fail("transputer needs a name and model")
			}
			spec := TransputerSpec{Name: fields[1], Model: strings.ToLower(fields[2])}
			if prev, dup := nodeLine[spec.Name]; dup {
				return nil, fail("duplicate transputer name %q (first declared at line %d)", spec.Name, prev)
			}
			if spec.Model != "t424" && spec.Model != "t222" {
				return nil, fail("unknown model %q", fields[2])
			}
			for _, opt := range fields[3:] {
				k, v, ok := strings.Cut(opt, "=")
				if !ok {
					return nil, fail("bad option %q", opt)
				}
				switch k {
				case "mem":
					n, err := parseSize(v)
					if err != nil {
						return nil, fail("bad memory size %q", v)
					}
					spec.MemBytes = n
				case "program":
					spec.Program = v
				default:
					return nil, fail("unknown option %q", k)
				}
			}
			nodeLine[spec.Name] = no
			topo.Transputers = append(topo.Transputers, spec)
		case "connect":
			if len(fields) != 3 {
				return nil, fail("connect needs two link ends")
			}
			a, al, err := parseEnd(fields[1])
			if err != nil {
				return nil, fail("%v", err)
			}
			b, bl, err := parseEnd(fields[2])
			if err != nil {
				return nil, fail("%v", err)
			}
			if a == b && al == bl {
				return nil, fail("cannot connect link end %s to itself", fields[1])
			}
			for _, end := range []string{fields[1], fields[2]} {
				if err := claim(end); err != nil {
					return nil, err
				}
			}
			refs = append(refs, ref{a, no}, ref{b, no})
			topo.Connections = append(topo.Connections, Connection{A: a, ALink: al, B: b, BLink: bl})
		case "host":
			if len(fields) != 2 {
				return nil, fail("host needs one link end")
			}
			n, l, err := parseEnd(fields[1])
			if err != nil {
				return nil, fail("%v", err)
			}
			if err := claim(fields[1]); err != nil {
				return nil, err
			}
			refs = append(refs, ref{n, no})
			topo.Hosts = append(topo.Hosts, HostSpec{Node: n, Link: l})
		case "input":
			if len(fields) < 3 {
				return nil, fail("input needs a node and at least one word")
			}
			for _, f := range fields[2:] {
				v, err := strconv.ParseInt(f, 10, 64)
				if err != nil {
					return nil, fail("bad input word %q", f)
				}
				topo.Inputs[fields[1]] = append(topo.Inputs[fields[1]], v)
			}
			refs = append(refs, ref{fields[1], no})
		case "run":
			if len(fields) != 2 {
				return nil, fail("run needs a duration")
			}
			d, err := parseDuration(fields[1])
			if err != nil {
				return nil, fail("bad duration %q", fields[1])
			}
			topo.RunLimit = d
		case "seed":
			if len(fields) != 2 {
				return nil, fail("seed needs one number")
			}
			v, err := strconv.ParseUint(fields[1], 0, 64)
			if err != nil {
				return nil, fail("bad seed %q", fields[1])
			}
			topo.Seed = v
		case "linkmode":
			mode, err := parseLinkMode(fields[1:])
			if err != nil {
				return nil, fail("%v", err)
			}
			topo.LinkMode = mode
		case "fault":
			rule, err := parseFault(fields[1:])
			if err != nil {
				return nil, fail("%v", err)
			}
			refs = append(refs, ref{rule.Node, no})
			topo.Faults = append(topo.Faults, rule)
			faultLine = append(faultLine, no)
		case "heartbeat":
			if heartbeatAt != 0 {
				return nil, fail("duplicate heartbeat directive (first at line %d)", heartbeatAt)
			}
			heartbeatAt = no
			hb, err := parseHeartbeat(fields[1:])
			if err != nil {
				return nil, fail("%v", err)
			}
			topo.Heartbeat = hb
		case "route":
			if routeAt != 0 {
				return nil, fail("duplicate route directive (first at line %d)", routeAt)
			}
			routeAt = no
			rt, err := parseRoute(fields[1:])
			if err != nil {
				return nil, fail("%v", err)
			}
			topo.Route = rt
		case "vchan":
			if len(fields) != 3 {
				return nil, fail("vchan needs a link end and count=N")
			}
			n, l, err := parseEnd(fields[1])
			if err != nil {
				return nil, fail("%v", err)
			}
			k, v, ok := strings.Cut(fields[2], "=")
			if !ok || k != "count" {
				return nil, fail("vchan needs count=N, got %q", fields[2])
			}
			cnt, err := strconv.Atoi(v)
			if err != nil || cnt < 2 || cnt > link.MaxVChans {
				return nil, fail("bad vchan count %q (want 2..%d)", v, link.MaxVChans)
			}
			refs = append(refs, ref{n, no})
			topo.VChans = append(topo.VChans, VChanSpec{Node: n, Link: l, Count: cnt})
			vchanLine = append(vchanLine, no)
		case "shard":
			if len(fields) < 3 {
				return nil, fail("shard needs at least two node names")
			}
			group := fields[1:]
			seen := make(map[string]bool, len(group))
			for _, name := range group {
				if seen[name] {
					return nil, fail("duplicate node %q in shard group", name)
				}
				seen[name] = true
				if prev, dup := shardOf[name]; dup {
					return nil, fail("node %q already in the shard group at line %d", name, prev)
				}
				shardOf[name] = no
				refs = append(refs, ref{name, no})
			}
			topo.Shards = append(topo.Shards, group)
		case "message":
			msg, err := parseMessage(fields[1:])
			if err != nil {
				return nil, fail("%v", err)
			}
			refs = append(refs, ref{msg.From, no}, ref{msg.To, no})
			topo.Messages = append(topo.Messages, msg)
		default:
			return nil, fail("unknown directive %q", fields[0])
		}
	}
	for _, r := range refs {
		if _, ok := nodeLine[r.name]; !ok {
			return nil, fmt.Errorf("topology line %d: unknown transputer %q", r.line, r.name)
		}
	}
	if err := validateFaults(topo, faultLine, wiredLine); err != nil {
		return nil, err
	}
	if err := validateVChans(topo, vchanLine, faultLine, wiredLine); err != nil {
		return nil, err
	}
	if topo.Route.Enabled {
		if !topo.LinkMode.Reliable {
			return nil, fmt.Errorf("topology: route requires linkmode reliable")
		}
		if !topo.Heartbeat.Set {
			return nil, fmt.Errorf("topology: route requires a heartbeat directive")
		}
	}
	if len(topo.Messages) > 0 && !topo.Route.Enabled {
		return nil, fmt.Errorf("topology: message directives require a route directive")
	}
	return topo, nil
}

// validateFaults cross-checks the fault script against the wiring, so
// a bad campaign is rejected when the file is read instead of
// surfacing as a puzzling mid-run no-op.  Every error carries the
// offending line.
func validateFaults(topo *Topology, faultLine []int, wiredLine map[string]int) error {
	// peerEnd maps each connected link end to its other end, so a
	// sever of the same physical link via either end is caught.
	peerEnd := make(map[string]string)
	for _, c := range topo.Connections {
		a := fmt.Sprintf("%s.%d", c.A, c.ALink)
		b := fmt.Sprintf("%s.%d", c.B, c.BLink)
		peerEnd[a] = b
		peerEnd[b] = a
	}
	severed := make(map[string]int) // link end -> line of its sever
	halted := make(map[string]int)  // node -> line of its halt
	restarted := make(map[string]int)
	for i, r := range topo.Faults {
		no := faultLine[i]
		fail := func(format string, args ...interface{}) error {
			return fmt.Errorf("topology line %d: %s", no, fmt.Sprintf(format, args...))
		}
		switch r.Kind {
		case fault.Halt:
			if prev, dup := halted[r.Node]; dup {
				return fail("duplicate halt of %q (first at line %d)", r.Node, prev)
			}
			halted[r.Node] = no
		case fault.Restart:
			if prev, dup := restarted[r.Node]; dup {
				return fail("duplicate restart of %q (first at line %d)", r.Node, prev)
			}
			restarted[r.Node] = no
			haltAt := sim.Time(-1)
			for _, h := range topo.Faults {
				if h.Kind == fault.Halt && h.Node == r.Node {
					haltAt = h.At
				}
			}
			if haltAt < 0 {
				return fail("restart of %q has no matching halt", r.Node)
			}
			if haltAt >= r.At {
				return fail("restart of %q at %v does not follow its halt at %v", r.Node, r.At, haltAt)
			}
		default:
			// Wire-targeted rules must name an end that is actually
			// wired (a connection or a host attachment).
			end := fmt.Sprintf("%s.%d", r.Node, r.Link)
			if _, wired := wiredLine[end]; !wired {
				return fail("fault %s targets unwired link end %s", r.Kind, end)
			}
			if r.Kind == fault.Sever {
				if prev, dup := severed[end]; dup {
					return fail("duplicate sever of %s (first at line %d)", end, prev)
				}
				if p, ok := peerEnd[end]; ok {
					if prev, dup := severed[p]; dup {
						return fail("sever of %s cuts the same link as %s at line %d", end, p, prev)
					}
				}
				severed[end] = no
			}
		}
	}
	return nil
}

// validateVChans cross-checks vchan directives against the wiring and
// the fault plan.  A vchan end must belong to a transputer-to-
// transputer connection (host links carry the boot protocol and cannot
// be multiplexed), a physical wire may be multiplexed only once even
// when named from its other end, and the fault plan may not touch a
// multiplexed wire: the mux frames multi-byte units and a corrupted or
// dropped header would desynchronise every logical channel at once, so
// the combination is rejected when the file is read.
func validateVChans(topo *Topology, vchanLine, faultLine []int, wiredLine map[string]int) error {
	if len(topo.VChans) == 0 {
		return nil
	}
	peerEnd := make(map[string]string)
	for _, c := range topo.Connections {
		a := fmt.Sprintf("%s.%d", c.A, c.ALink)
		b := fmt.Sprintf("%s.%d", c.B, c.BLink)
		peerEnd[a] = b
		peerEnd[b] = a
	}
	muxed := make(map[string]int) // link end -> line of its vchan
	for i, vc := range topo.VChans {
		no := vchanLine[i]
		fail := func(format string, args ...interface{}) error {
			return fmt.Errorf("topology line %d: %s", no, fmt.Sprintf(format, args...))
		}
		end := fmt.Sprintf("%s.%d", vc.Node, vc.Link)
		peer, connected := peerEnd[end]
		if !connected {
			if _, wired := wiredLine[end]; wired {
				return fail("vchan on host link end %s (vchans need a transputer-to-transputer connect)", end)
			}
			return fail("vchan targets unwired link end %s", end)
		}
		if prev, dup := muxed[end]; dup {
			return fail("duplicate vchan on %s (first at line %d)", end, prev)
		}
		if prev, dup := muxed[peer]; dup {
			return fail("vchan on %s multiplexes the same wire as %s at line %d", end, peer, prev)
		}
		muxed[end] = no
	}
	// adjacent records every node touching a multiplexed wire, so halt
	// and restart rules can be refused along with wire-level faults.
	// A node on two multiplexed wires keeps the line number of the
	// lexically earliest end, so refusals cite a stable line.
	muxEnds := make([]string, 0, len(muxed))
	for end := range muxed {
		muxEnds = append(muxEnds, end)
	}
	sort.Strings(muxEnds)
	adjacent := make(map[string]int)
	for _, end := range muxEnds {
		no := muxed[end]
		node, _, _ := strings.Cut(end, ".")
		if _, seen := adjacent[node]; !seen {
			adjacent[node] = no
		}
		pnode, _, _ := strings.Cut(peerEnd[end], ".")
		if _, seen := adjacent[pnode]; !seen {
			adjacent[pnode] = no
		}
	}
	for i, r := range topo.Faults {
		no := faultLine[i]
		switch r.Kind {
		case fault.Halt, fault.Restart:
			if vl, ok := adjacent[r.Node]; ok {
				return fmt.Errorf("topology line %d: fault %s of %q touches a multiplexed link (vchan at line %d)", no, r.Kind, r.Node, vl)
			}
		default:
			end := fmt.Sprintf("%s.%d", r.Node, r.Link)
			prev, dup := muxed[end]
			if !dup {
				if pe, ok := peerEnd[end]; ok {
					prev, dup = muxed[pe]
				}
			}
			if dup {
				return fmt.Errorf("topology line %d: fault %s targets multiplexed link end %s (vchan at line %d)", no, r.Kind, end, prev)
			}
		}
	}
	return nil
}

// parseHeartbeat reads a heartbeat directive:
//
//	heartbeat [interval=D] [timeout=D]
func parseHeartbeat(args []string) (HeartbeatSpec, error) {
	hb := HeartbeatSpec{Set: true}
	for _, opt := range args {
		k, v, ok := strings.Cut(opt, "=")
		if !ok {
			return hb, fmt.Errorf("bad heartbeat option %q", opt)
		}
		d, err := parseDuration(v)
		if err != nil || d <= 0 {
			return hb, fmt.Errorf("bad heartbeat %s %q", k, v)
		}
		switch k {
		case "interval":
			hb.Interval = d
		case "timeout":
			hb.Timeout = d
		default:
			return hb, fmt.Errorf("unknown heartbeat option %q", k)
		}
	}
	return hb, nil
}

// parseRoute reads a route directive:
//
//	route [hop=D] [replay=D] [ttl=N]
func parseRoute(args []string) (RouteSpec, error) {
	rt := RouteSpec{Enabled: true}
	for _, opt := range args {
		k, v, ok := strings.Cut(opt, "=")
		if !ok {
			return rt, fmt.Errorf("bad route option %q", opt)
		}
		switch k {
		case "hop":
			d, err := parseDuration(v)
			if err != nil || d <= 0 {
				return rt, fmt.Errorf("bad route hop %q", v)
			}
			rt.Hop = d
		case "replay":
			d, err := parseDuration(v)
			if err != nil || d <= 0 {
				return rt, fmt.Errorf("bad route replay %q", v)
			}
			rt.Replay = d
		case "ttl":
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 || n > 255 {
				return rt, fmt.Errorf("bad route ttl %q", v)
			}
			rt.TTL = n
		default:
			return rt, fmt.Errorf("unknown route option %q", k)
		}
	}
	return rt, nil
}

// parseMessage reads a message directive:
//
//	message <from> <to> at=T data=STRING
func parseMessage(args []string) (MessageSpec, error) {
	var msg MessageSpec
	if len(args) < 3 {
		return msg, fmt.Errorf("message needs a sender, a receiver and at=")
	}
	msg.From = args[0]
	msg.To = args[1]
	for _, opt := range args[2:] {
		k, v, ok := strings.Cut(opt, "=")
		if !ok {
			return msg, fmt.Errorf("bad message option %q", opt)
		}
		switch k {
		case "at":
			d, err := parseDuration(v)
			if err != nil || d <= 0 {
				return msg, fmt.Errorf("bad message time %q", v)
			}
			msg.At = d
		case "data":
			msg.Data = v
		default:
			return msg, fmt.Errorf("unknown message option %q", k)
		}
	}
	if msg.At <= 0 {
		return msg, fmt.Errorf("message needs at=")
	}
	return msg, nil
}

// parseLinkMode reads the arguments of a linkmode directive.
func parseLinkMode(args []string) (LinkMode, error) {
	var mode LinkMode
	if len(args) == 0 {
		return mode, fmt.Errorf("linkmode needs a mode (standard or reliable)")
	}
	switch args[0] {
	case "standard":
		if len(args) > 1 {
			return mode, fmt.Errorf("linkmode standard takes no options")
		}
		return mode, nil
	case "reliable":
		mode.Reliable = true
	default:
		return mode, fmt.Errorf("unknown link mode %q (want standard or reliable)", args[0])
	}
	for _, opt := range args[1:] {
		k, v, ok := strings.Cut(opt, "=")
		if !ok {
			return mode, fmt.Errorf("bad linkmode option %q", opt)
		}
		switch k {
		case "timeout":
			d, err := parseDuration(v)
			if err != nil || d <= 0 {
				return mode, fmt.Errorf("bad timeout %q", v)
			}
			mode.Timeout = d
		case "retries":
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				return mode, fmt.Errorf("bad retries %q", v)
			}
			mode.Retries = n
		default:
			return mode, fmt.Errorf("unknown linkmode option %q", k)
		}
	}
	return mode, nil
}

// parseFault reads the arguments of a fault directive:
//
//	fault corrupt <node>.<link> rate=R
//	fault drop    <node>.<link> rate=R [pkt=data|ack|any]
//	fault jitter  <node>.<link> rate=R max=D
//	fault sever   <node>.<link> at=T
//	fault halt    <node>        at=T
//	fault restart <node>        at=T
func parseFault(args []string) (fault.Rule, error) {
	var rule fault.Rule
	if len(args) < 2 {
		return rule, fmt.Errorf("fault needs a kind and a target")
	}
	kind, err := fault.ParseKind(args[0])
	if err != nil {
		return rule, err
	}
	rule.Kind = kind
	if kind == fault.Halt || kind == fault.Restart {
		if strings.ContainsRune(args[1], '.') {
			return rule, fmt.Errorf("fault %s targets a node, not a link end", kind)
		}
		rule.Node = args[1]
		rule.Link = -1
	} else {
		n, l, err := parseEnd(args[1])
		if err != nil {
			return rule, err
		}
		rule.Node = n
		rule.Link = l
	}
	for _, opt := range args[2:] {
		k, v, ok := strings.Cut(opt, "=")
		if !ok {
			return rule, fmt.Errorf("bad fault option %q", opt)
		}
		switch k {
		case "rate":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return rule, fmt.Errorf("bad rate %q", v)
			}
			rule.Rate = f
		case "pkt":
			pc, err := fault.ParsePacketClass(v)
			if err != nil {
				return rule, err
			}
			rule.Pkt = pc
		case "at":
			d, err := parseDuration(v)
			if err != nil {
				return rule, fmt.Errorf("bad time %q", v)
			}
			rule.At = d
		case "max":
			d, err := parseDuration(v)
			if err != nil {
				return rule, fmt.Errorf("bad duration %q", v)
			}
			rule.Max = d
		default:
			return rule, fmt.Errorf("unknown fault option %q", k)
		}
	}
	if err := rule.Validate(); err != nil {
		return rule, err
	}
	return rule, nil
}

// parseEnd reads a "node.link" link end, checking the link index range.
func parseEnd(s string) (node string, link int, err error) {
	node, ls, ok := strings.Cut(s, ".")
	if !ok || node == "" {
		return "", 0, fmt.Errorf("bad link end %q (want node.link)", s)
	}
	link, err = strconv.Atoi(ls)
	if err != nil {
		return "", 0, fmt.Errorf("bad link number in %q", s)
	}
	if link < 0 || link >= core.NumLinks {
		return "", 0, fmt.Errorf("link %d in %q out of range 0..%d", link, s, core.NumLinks-1)
	}
	return node, link, nil
}

func parseSize(s string) (int, error) {
	mult := 1
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult = 1024
		s = s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult = 1024 * 1024
		s = s[:len(s)-1]
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	return n * mult, nil
}

func parseDuration(s string) (sim.Time, error) {
	mult := sim.Nanosecond
	switch {
	case strings.HasSuffix(s, "ms"):
		mult = sim.Millisecond
		s = s[:len(s)-2]
	case strings.HasSuffix(s, "us"):
		mult = sim.Microsecond
		s = s[:len(s)-2]
	case strings.HasSuffix(s, "ns"):
		s = s[:len(s)-2]
	case strings.HasSuffix(s, "s"):
		mult = sim.Second
		s = s[:len(s)-1]
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	return sim.Time(n) * mult, nil
}
