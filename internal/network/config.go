package network

import (
	"fmt"
	"strconv"
	"strings"

	"transputer/internal/sim"
)

// Topology is a parsed network description: the text format used by
// the tnet tool to configure a system of transputers, in the spirit of
// occam configuration.
//
//	# a three-transputer workstation (paper, figure 6)
//	transputer app  t424 mem=64K program=app.occ
//	transputer disk t424 mem=64K program=disk.occ
//	transputer gfx  t424 mem=64K program=gfx.occ
//	connect app.1 disk.0
//	connect app.2 gfx.0
//	host app.0
//	input app 5 10
//	run 100ms
type Topology struct {
	Transputers []TransputerSpec
	Connections []Connection
	Hosts       []HostSpec
	Inputs      map[string][]int64
	RunLimit    sim.Time
}

// TransputerSpec describes one node.
type TransputerSpec struct {
	Name     string
	Model    string // "t424" or "t222"
	MemBytes int    // 0 means the model default
	Program  string // path to .occ or .tasm source
}

// Connection joins two link ends.
type Connection struct {
	A     string
	ALink int
	B     string
	BLink int
}

// HostSpec attaches a host device to a node's link.
type HostSpec struct {
	Node string
	Link int
}

// ParseTopology reads the text format above.
func ParseTopology(src string) (*Topology, error) {
	topo := &Topology{Inputs: make(map[string][]int64)}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		fail := func(format string, args ...interface{}) error {
			return fmt.Errorf("topology line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "transputer":
			if len(fields) < 3 {
				return nil, fail("transputer needs a name and model")
			}
			spec := TransputerSpec{Name: fields[1], Model: strings.ToLower(fields[2])}
			if spec.Model != "t424" && spec.Model != "t222" {
				return nil, fail("unknown model %q", fields[2])
			}
			for _, opt := range fields[3:] {
				k, v, ok := strings.Cut(opt, "=")
				if !ok {
					return nil, fail("bad option %q", opt)
				}
				switch k {
				case "mem":
					n, err := parseSize(v)
					if err != nil {
						return nil, fail("bad memory size %q", v)
					}
					spec.MemBytes = n
				case "program":
					spec.Program = v
				default:
					return nil, fail("unknown option %q", k)
				}
			}
			topo.Transputers = append(topo.Transputers, spec)
		case "connect":
			if len(fields) != 3 {
				return nil, fail("connect needs two link ends")
			}
			a, al, err1 := parseEnd(fields[1])
			b, bl, err2 := parseEnd(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fail("bad link end")
			}
			topo.Connections = append(topo.Connections, Connection{A: a, ALink: al, B: b, BLink: bl})
		case "host":
			if len(fields) != 2 {
				return nil, fail("host needs one link end")
			}
			n, l, err := parseEnd(fields[1])
			if err != nil {
				return nil, fail("bad link end %q", fields[1])
			}
			topo.Hosts = append(topo.Hosts, HostSpec{Node: n, Link: l})
		case "input":
			if len(fields) < 3 {
				return nil, fail("input needs a node and at least one word")
			}
			for _, f := range fields[2:] {
				v, err := strconv.ParseInt(f, 10, 64)
				if err != nil {
					return nil, fail("bad input word %q", f)
				}
				topo.Inputs[fields[1]] = append(topo.Inputs[fields[1]], v)
			}
		case "run":
			if len(fields) != 2 {
				return nil, fail("run needs a duration")
			}
			d, err := parseDuration(fields[1])
			if err != nil {
				return nil, fail("bad duration %q", fields[1])
			}
			topo.RunLimit = d
		default:
			return nil, fail("unknown directive %q", fields[0])
		}
	}
	return topo, nil
}

func parseEnd(s string) (node string, link int, err error) {
	node, ls, ok := strings.Cut(s, ".")
	if !ok || node == "" {
		return "", 0, fmt.Errorf("bad link end %q", s)
	}
	link, err = strconv.Atoi(ls)
	return node, link, err
}

func parseSize(s string) (int, error) {
	mult := 1
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult = 1024
		s = s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult = 1024 * 1024
		s = s[:len(s)-1]
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	return n * mult, nil
}

func parseDuration(s string) (sim.Time, error) {
	mult := sim.Nanosecond
	switch {
	case strings.HasSuffix(s, "ms"):
		mult = sim.Millisecond
		s = s[:len(s)-2]
	case strings.HasSuffix(s, "us"):
		mult = sim.Microsecond
		s = s[:len(s)-2]
	case strings.HasSuffix(s, "ns"):
		s = s[:len(s)-2]
	case strings.HasSuffix(s, "s"):
		mult = sim.Second
		s = s[:len(s)-1]
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	return sim.Time(n) * mult, nil
}
