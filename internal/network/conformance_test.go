package network_test

import (
	"bytes"
	"testing"

	"transputer/internal/core"
	"transputer/internal/network"
	"transputer/internal/sim"
)

// Conformance across the protocol stack's configurations: the same
// transfer scenario — one node streams a known message to its peer
// over one wire — must deliver byte-identical data through the raw
// protocol, the stop-and-wait ablation, the error-detecting mode, and
// a virtual-channel multiplexed link; and every configuration must be
// deterministic across worker counts, completion instant included.

type xferOutcome struct {
	got  []byte
	done sim.Time
}

// stackPair builds a two-node system wired a.0 <-> b.1.
func stackPair(t *testing.T, workers int, reliable bool) (*network.System, *network.Node, *network.Node) {
	t.Helper()
	s := network.NewSystem()
	if workers > 0 {
		s.SetWorkers(workers)
	}
	c := core.T424().WithMemory(64 * 1024)
	a := s.MustAddTransputer("a", c)
	b := s.MustAddTransputer("b", c)
	s.MustConnect(a, 0, b, 1)
	if reliable {
		s.SetLinkMode(network.LinkMode{Reliable: true})
	}
	return s, a, b
}

// transferRaw streams the payload as one raw byte stream.
func transferRaw(t *testing.T, workers int, payload []byte, stopwait, reliable bool) xferOutcome {
	t.Helper()
	s, a, b := stackPair(t, workers, reliable)
	if stopwait {
		a.Engine.SetStopAndWait(true)
		b.Engine.SetStopAndWait(true)
	}
	var out xferOutcome
	b.Clock().Schedule(sim.Microsecond, func() {
		b.Engine.RecvRaw(1, len(payload), func(d []byte) {
			out.got = d
			out.done = b.Clock().Now()
		})
	})
	a.Clock().Schedule(2*sim.Microsecond, func() {
		a.Engine.SendRaw(0, payload, nil)
	})
	s.Run(0)
	return out
}

// transferVC streams the payload as n equal strips, one per virtual
// channel, reassembled by vchan index at the receiver.
func transferVC(t *testing.T, workers int, payload []byte, n int) xferOutcome {
	t.Helper()
	s, a, b := stackPair(t, workers, false)
	if err := s.EnableVChans(a, 0, n); err != nil {
		t.Fatal(err)
	}
	strip := len(payload) / n
	got := make([]byte, len(payload))
	var out xferOutcome
	left := n
	b.Clock().Schedule(sim.Microsecond, func() {
		for vc := 0; vc < n; vc++ {
			vc := vc
			b.Engine.RecvVC(1, vc, strip, func(d []byte) {
				copy(got[vc*strip:], d)
				left--
				if left == 0 {
					out.got = got
					out.done = b.Clock().Now()
				}
			})
		}
	})
	a.Clock().Schedule(2*sim.Microsecond, func() {
		for vc := 0; vc < n; vc++ {
			a.Engine.SendVC(0, vc, payload[vc*strip:(vc+1)*strip], nil)
		}
	})
	s.Run(0)
	return out
}

// TestProtocolStackConformance is the table: every configuration
// delivers the identical bytes, at an instant independent of the
// worker count.
func TestProtocolStackConformance(t *testing.T) {
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i*13 + 7)
	}
	configs := []struct {
		name string
		run  func(workers int) xferOutcome
	}{
		{"raw", func(w int) xferOutcome { return transferRaw(t, w, payload, false, false) }},
		{"stopwait", func(w int) xferOutcome { return transferRaw(t, w, payload, true, false) }},
		{"reliable", func(w int) xferOutcome { return transferRaw(t, w, payload, false, true) }},
		{"vchan8", func(w int) xferOutcome { return transferVC(t, w, payload, 8) }},
	}
	for _, c := range configs {
		t.Run(c.name, func(t *testing.T) {
			one := c.run(1)
			four := c.run(4)
			if !bytes.Equal(one.got, payload) {
				t.Fatalf("delivered %d bytes differ from the sent message", len(one.got))
			}
			if one.done == 0 {
				t.Fatal("transfer never completed")
			}
			if !bytes.Equal(one.got, four.got) || one.done != four.done {
				t.Fatalf("worker count changed the outcome: 1 worker (%d bytes at %v) vs 4 workers (%d bytes at %v)",
					len(one.got), one.done, len(four.got), four.done)
			}
		})
	}
}
