package network

// Shard-fusion partitioning: deciding which nodes to co-locate on one
// event-queue shard.  The partition never changes results — fused and
// unfused runs are byte-identical — so the heuristics here optimise
// only simulator wall-clock: wires whose both ends share a shard stop
// bounding coordinator windows, turning a barrier-bound neighbourhood
// into straight-line event execution.

import "transputer/internal/sim"

// FuseEdge is one weighted undirected edge of the fusion graph: two
// node names and how much their co-location would save (1 for plain
// wiring, observed wire traffic for adaptive mode).
type FuseEdge struct {
	A, B   string
	Weight uint64
}

// fuseMinDensityPerMs is the wire-activity density (data bytes plus
// protocol packets per millisecond of simulated time, both directions
// summed) below which adaptive fusion declines to merge an edge:
// fusing a quiet wire saves almost no barriers but still surrenders a
// parallel shard.  Busy links run at thousands of units/ms (a
// saturated 10 Mbit wire moves ~1250 bytes/ms), compute-bound ones at
// tens.
const fuseMinDensityPerMs = 200

// FuseTrafficFloor converts the adaptive-fusion density floor into an
// absolute TrafficEdges weight for a profile run that spanned the
// given simulated time.
func FuseTrafficFloor(span sim.Time) uint64 {
	ms := int64(span / sim.Millisecond)
	if ms < 1 {
		ms = 1
	}
	return uint64(ms) * fuseMinDensityPerMs
}

// GreedyFuse partitions nodes into at most maxParts groups by greedy
// edge contraction: repeatedly merge the two parts joined by the
// heaviest aggregate edge until the part count reaches maxParts or no
// remaining inter-part edge weighs at least minWeight.  Edges below
// minWeight never trigger a merge on their own, so an adaptive caller
// can pass the traffic level below which fusing is not worth losing a
// parallel shard (compute-heavy workloads then stay unfused).
//
// nodes must be in creation order; ties (equal weights) break toward
// the earliest-created parts, so the partition is deterministic.  The
// returned groups list every part with two or more members, each
// group's members in creation order, groups ordered by their earliest
// member — directly the SetPlacement input.
func GreedyFuse(nodes []string, edges []FuseEdge, maxParts int, minWeight uint64) [][]string {
	if maxParts < 1 {
		maxParts = 1
	}
	if minWeight < 1 {
		minWeight = 1
	}
	idx := make(map[string]int, len(nodes))
	for i, n := range nodes {
		idx[n] = i
	}
	// part[i] is the leader (smallest member index) of node i's part.
	part := make([]int, len(nodes))
	for i := range part {
		part[i] = i
	}
	find := func(i int) int {
		for part[i] != i {
			part[i] = part[part[i]]
			i = part[i]
		}
		return i
	}
	parts := len(nodes)
	for parts > maxParts {
		// Aggregate inter-part weights and pick the heaviest pair.  The
		// graphs are small (a network is tens of nodes), so recomputing
		// each round keeps the tie-break rule trivially deterministic.
		type pair struct{ a, b int }
		agg := make(map[pair]uint64)
		for _, e := range edges {
			ia, aok := idx[e.A]
			ib, bok := idx[e.B]
			if !aok || !bok {
				continue
			}
			a, b := find(ia), find(ib)
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			agg[pair{a, b}] += e.Weight
		}
		best, bestW := pair{-1, -1}, uint64(0)
		//tvet:ignore detrange max-reduction with a total tie-break on (weight, pair), so the winner is iteration-order-free
		for p, w := range agg {
			if w > bestW || (w == bestW && bestW > 0 &&
				(p.a < best.a || (p.a == best.a && p.b < best.b))) {
				best, bestW = p, w
			}
		}
		if bestW < minWeight {
			break
		}
		// Merge into the smaller leader so leaders stay the earliest
		// member.
		part[best.b] = best.a
		parts--
	}
	members := make(map[int][]string)
	var leaders []int
	for i, n := range nodes {
		l := find(i)
		if len(members[l]) == 0 {
			leaders = append(leaders, l)
		}
		members[l] = append(members[l], n)
	}
	var groups [][]string
	for _, l := range leaders { // leaders appear in creation order already
		if g := members[l]; len(g) >= 2 {
			groups = append(groups, g)
		}
	}
	return groups
}

// WiringEdges returns the system's physical connections as unit-weight
// fusion edges (one per wire pair, in wiring order) — the static
// fusion graph.  Host links and self-connections are not included.
func (s *System) WiringEdges() []FuseEdge {
	order := make(map[*Node]int, len(s.nodes))
	for i, n := range s.nodes {
		order[n] = i
	}
	var edges []FuseEdge
	for _, n := range s.nodes {
		for l := 0; l < len(n.peers); l++ {
			pn, pl, ok := n.Peer(l)
			if !ok || pn == n {
				continue
			}
			// Count each connection once, from the end added or wired
			// first.
			if order[pn] < order[n] || (pn == n && pl < l) {
				continue
			}
			edges = append(edges, FuseEdge{A: n.Name, B: pn.Name, Weight: 1})
		}
	}
	return edges
}

// TrafficEdges returns the system's connections weighted by observed
// wire activity — data bytes plus protocol packets in both directions —
// for adaptive fusion from a profiling pre-run.  Connections that
// carried nothing are omitted.
func (s *System) TrafficEdges() []FuseEdge {
	order := make(map[*Node]int, len(s.nodes))
	for i, n := range s.nodes {
		order[n] = i
	}
	var edges []FuseEdge
	for _, n := range s.nodes {
		for l := 0; l < len(n.peers); l++ {
			pn, pl, ok := n.Peer(l)
			if !ok || pn == n || order[pn] < order[n] {
				continue
			}
			w := wireActivity(n, l) + wireActivity(pn, pl)
			if w == 0 {
				continue
			}
			edges = append(edges, FuseEdge{A: n.Name, B: pn.Name, Weight: w})
		}
	}
	return edges
}

func wireActivity(n *Node, l int) uint64 {
	st := n.Engine.WireStats(l)
	return st.DataBytes + st.Acks + st.Naks + st.Beats
}
