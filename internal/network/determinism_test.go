package network_test

import (
	"reflect"
	"testing"

	"transputer/internal/apps/dbsearch"
	"transputer/internal/apps/sieve"
	"transputer/internal/sim"
)

// The simulation must be perfectly deterministic: identical builds
// produce identical simulated times, identical answers and identical
// instruction counts.  Determinism is what makes the cycle-level
// claims in EXPERIMENTS.md reproducible, so it is pinned here.

func TestDeterministicDatabaseSearch(t *testing.T) {
	run := func() (sim.Time, []int64, uint64) {
		p := dbsearch.Params{Rows: 3, Cols: 3, RecordsPerNode: 60, KeySpace: 16, MemBytes: 64 * 1024}
		s, err := dbsearch.Build(p)
		if err != nil {
			t.Fatal(err)
		}
		counts, rep := s.RunSearches([]int64{4, 9}, sim.Second)
		if !rep.Settled {
			t.Fatal("did not settle")
		}
		return rep.Time, counts, s.Net.TotalStats().Instructions
	}
	t1, c1, i1 := run()
	t2, c2, i2 := run()
	if t1 != t2 {
		t.Errorf("simulated times differ: %v vs %v", t1, t2)
	}
	if i1 != i2 {
		t.Errorf("instruction counts differ: %d vs %d", i1, i2)
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Errorf("answers differ at %d: %d vs %d", i, c1[i], c2[i])
		}
	}
}

func TestDeterministicSieve(t *testing.T) {
	run := func() (sim.Time, int) {
		s, err := sieve.Build(sieve.Params{Limit: 30, Stages: 10})
		if err != nil {
			t.Fatal(err)
		}
		primes, rep := s.Run(sim.Second)
		return rep.Time, len(primes)
	}
	t1, n1 := run()
	t2, n2 := run()
	if t1 != t2 || n1 != n2 {
		t.Errorf("runs differ: %v/%d vs %v/%d", t1, n1, t2, n2)
	}
}

// TestDeterministicAcrossWorkers runs the database-search grid at one
// and four workers: the worker count must be invisible in the settle
// time, the answers, and every aggregate counter including the
// per-opcode histogram.
func TestDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) (sim.Time, []int64, interface{}) {
		p := dbsearch.Params{Rows: 3, Cols: 3, RecordsPerNode: 60, KeySpace: 16, MemBytes: 64 * 1024}
		s, err := dbsearch.Build(p)
		if err != nil {
			t.Fatal(err)
		}
		s.Net.SetWorkers(workers)
		counts, rep := s.RunSearches([]int64{4, 9}, sim.Second)
		if !rep.Settled {
			t.Fatalf("workers=%d: did not settle", workers)
		}
		return rep.Time, counts, s.Net.TotalStats()
	}
	t1, c1, st1 := run(1)
	t4, c4, st4 := run(4)
	if t1 != t4 {
		t.Errorf("simulated times differ: %v vs %v", t1, t4)
	}
	if !reflect.DeepEqual(c1, c4) {
		t.Errorf("answers differ: %v vs %v", c1, c4)
	}
	if !reflect.DeepEqual(st1, st4) {
		t.Errorf("total stats differ:\nworkers=1: %+v\nworkers=4: %+v", st1, st4)
	}
}

func TestTotalStats(t *testing.T) {
	s, err := sieve.Build(sieve.Params{Limit: 20, Stages: 8})
	if err != nil {
		t.Fatal(err)
	}
	s.Net.Run(sim.Second)
	total := s.Net.TotalStats()
	if total.Instructions == 0 || total.Cycles == 0 {
		t.Error("aggregate stats empty")
	}
	// Messages out across the system must equal messages in: every
	// communication has two ends.
	if total.ExternalOut == 0 {
		t.Error("no external traffic counted")
	}
	var sum uint64
	for _, n := range s.Net.Nodes() {
		sum += n.M.Stats().Instructions
	}
	if sum != total.Instructions {
		t.Errorf("aggregate %d != per-node sum %d", total.Instructions, sum)
	}
}
